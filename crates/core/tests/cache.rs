//! Persistent-cache acceptance suite.
//!
//! The tentpole claim for the content-addressed cache: editing one
//! function invalidates **exactly** its transitive-caller cone — the same
//! frontier [`rid_core::incremental::affected_functions`] computes — and
//! everything else is answered from the cache. Plus the soundness
//! invariant that makes the cache safe under budgets: degraded summaries
//! are never cached.

use std::collections::{BTreeMap, BTreeSet};

use rid_core::apis::linux_dpm_apis;
use rid_core::incremental::affected_functions;
use rid_core::{
    analyze_program_cached, AnalysisOptions, CallGraph, FaultPlan, PathLimits, SummaryCache,
};
use rid_corpus::kernel::{generate_kernel, KernelConfig};
use rid_ir::Program;

fn parse(sources: &[String]) -> Program {
    rid_frontend::parse_program(sources.iter().map(String::as_str)).expect("corpus parses")
}

/// Inserts a harmless statement at the top of `name`'s body — a pure
/// content edit that changes the function's lowered IR text without
/// touching its refcount behaviour or classification.
fn edit_function(sources: &[String], name: &str) -> Vec<String> {
    let needle = format!("fn {name}(");
    let mut edited = false;
    let out: Vec<String> = sources
        .iter()
        .map(|src| {
            if edited {
                return src.clone();
            }
            let Some(pos) = src.find(&needle) else { return src.clone() };
            let brace = pos + src[pos..].find('{').expect("function has a body");
            let mut s = src.clone();
            s.insert_str(brace + 1, " let edit_probe = 1; ");
            edited = true;
            s
        })
        .collect();
    assert!(edited, "function `{name}` not found in any source");
    out
}

/// Current cache keys by function name.
fn key_snapshot(cache: &SummaryCache) -> BTreeMap<String, String> {
    cache.entries.iter().map(|(n, e)| (n.clone(), e.key.clone())).collect()
}

#[test]
fn cache_invalidation_matches_affected_functions_exactly() {
    let corpus = generate_kernel(&KernelConfig::tiny(29));
    let program = parse(&corpus.sources);
    let apis = linux_dpm_apis();
    let options = AnalysisOptions::default();

    let mut cache = SummaryCache::new();
    let cold =
        analyze_program_cached(&program, &apis, &options, &FaultPlan::none(), Some(&mut cache));
    assert!(cold.degraded.is_empty(), "clean corpus expected: {:?}", cold.degraded);
    assert_eq!(cold.stats.cache_misses, cold.stats.functions_analyzed);
    assert_eq!(cache.len(), cold.stats.functions_analyzed, "every clean result is cached");

    // Pick a cached function with a real caller cone, but one that does
    // not cover the whole cache (so both hits and invalidations occur).
    // Names are iterated in order, so the choice is deterministic.
    let graph = CallGraph::build(&program);
    let cached: BTreeSet<String> = key_snapshot(&cache).into_keys().collect();
    let target = cached
        .iter()
        .find(|name| {
            let affected = affected_functions(&graph, &[name]);
            let cone = affected.iter().filter(|f| cached.contains(*f)).count();
            cone >= 3 && cone + 3 <= cached.len()
        })
        .expect("corpus must contain a function with a mid-sized caller cone")
        .clone();
    let affected = affected_functions(&graph, &[&target]);
    let expected_cone: BTreeSet<String> =
        affected.iter().filter(|f| cached.contains(*f)).cloned().collect();

    let before = key_snapshot(&cache);
    let edited = parse(&edit_function(&corpus.sources, &target));
    let warm =
        analyze_program_cached(&edited, &apis, &options, &FaultPlan::none(), Some(&mut cache));

    // Precisely the cone misses the cache; everything else hits.
    assert_eq!(warm.stats.cache_invalidated, expected_cone.len());
    assert_eq!(warm.stats.cache_hits, warm.stats.functions_analyzed - expected_cone.len());
    assert_eq!(warm.stats.cache_misses, 0, "the edit deletes nothing");

    // And the set of rewritten keys is exactly the affected frontier.
    let after = key_snapshot(&cache);
    let changed: BTreeSet<String> = before
        .iter()
        .filter(|(name, key)| after.get(*name) != Some(key))
        .map(|(name, _)| name.clone())
        .collect();
    assert_eq!(changed, expected_cone, "rewritten keys == affected_functions");

    // The warm result matches a from-scratch analysis of the edited
    // program, reports and all.
    let fresh = analyze_program_cached(&edited, &apis, &options, &FaultPlan::none(), None);
    assert_eq!(warm.reports, fresh.reports);
    assert_eq!(
        serde_json::to_string(&warm.summaries).unwrap(),
        serde_json::to_string(&fresh.summaries).unwrap()
    );
}

#[test]
fn degraded_summaries_are_never_cached() {
    // A path cap low enough to degrade the corpus's branchier functions:
    // their partial summaries must not enter the cache, and a warm re-run
    // recomputes exactly them (deterministically degrading again).
    let corpus = generate_kernel(&KernelConfig::tiny(29));
    let program = parse(&corpus.sources);
    let apis = linux_dpm_apis();
    let options = AnalysisOptions {
        limits: PathLimits { max_paths: 2, ..PathLimits::default() },
        ..AnalysisOptions::default()
    };

    let mut cache = SummaryCache::new();
    let cold =
        analyze_program_cached(&program, &apis, &options, &FaultPlan::none(), Some(&mut cache));
    assert!(!cold.degraded.is_empty(), "max_paths=2 must degrade something");
    for name in cold.degraded.keys() {
        assert!(cache.get(name).is_none(), "degraded `{name}` must not be cached");
    }
    assert_eq!(cache.len() + cold.degraded.len(), cold.stats.functions_analyzed);

    let warm =
        analyze_program_cached(&program, &apis, &options, &FaultPlan::none(), Some(&mut cache));
    // Unchanged corpus: the degraded functions are the only recomputation.
    assert_eq!(warm.stats.cache_misses, cold.degraded.len());
    assert_eq!(warm.stats.cache_invalidated, 0);
    assert_eq!(warm.stats.cache_hits, warm.stats.functions_analyzed - cold.degraded.len());
    assert_eq!(
        warm.degraded.keys().collect::<Vec<_>>(),
        cold.degraded.keys().collect::<Vec<_>>(),
        "recomputation degrades deterministically"
    );
    assert_eq!(
        serde_json::to_string(&warm.summaries).unwrap(),
        serde_json::to_string(&cold.summaries).unwrap()
    );
}
