//! Differential acceptance suite: tree-mode execution (shared-prefix
//! walk + incremental solving + memo cache) must produce summaries
//! byte-identical to the per-path reference implementation.
//!
//! The comparison is on the serialized summary database (every
//! `FnSummary`: entry order, constraints, `CallRet`/`Random` occurrence
//! numbering, change maps) and on the bug reports. Two fault classes are
//! deliberately *excluded* from cross-mode comparison:
//!
//! * wall-clock deadlines / slow faults — where execution is cut off
//!   depends on elapsed time, which is nondeterministic in either mode;
//! * *partial* solver fuel — the two modes issue different query
//!   sequences (tree mode skips shared-prefix re-solves), so a finite
//!   nonzero fuel pool runs dry at different points. Fuel **zero** is
//!   fine (neither mode can propagate anything, so both answer from the
//!   raw edges identically) and is covered by the stall-fault test.

use rid_core::apis::linux_dpm_apis;
use rid_core::{
    analyze_program_cached, analyze_program_with_faults, AnalysisOptions, AnalysisResult,
    ExecMode, FaultPlan, SummaryCache,
};
use rid_corpus::kernel::{generate_kernel, KernelConfig};
use rid_frontend::parse_program;
use rid_ir::Program;

fn corpus_program(config: &KernelConfig) -> Program {
    let corpus = generate_kernel(config);
    parse_program(corpus.sources.iter().map(String::as_str)).expect("corpus parses")
}

fn run(
    program: &Program,
    mode: ExecMode,
    threads: usize,
    faults: &FaultPlan,
) -> AnalysisResult {
    let options = AnalysisOptions { exec_mode: mode, threads, ..AnalysisOptions::default() };
    analyze_program_with_faults(program, &linux_dpm_apis(), &options, faults)
}

/// The whole summary database as one canonical JSON blob (summaries
/// sorted by function name — the byte-identity the tentpole demands).
fn db_json(result: &AnalysisResult) -> String {
    let mut summaries: Vec<_> = result.summaries.iter().collect();
    summaries.sort_by_key(|s| s.func);
    summaries
        .iter()
        .map(|s| serde_json::to_string(*s).unwrap())
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_equivalent(tree: &AnalysisResult, per_path: &AnalysisResult, what: &str) {
    assert_eq!(db_json(tree), db_json(per_path), "summary bytes diverge: {what}");
    assert_eq!(tree.reports, per_path.reports, "reports diverge: {what}");
    assert_eq!(
        tree.stats.functions_analyzed, per_path.stats.functions_analyzed,
        "coverage diverges: {what}"
    );
    assert_eq!(
        tree.stats.functions_partial, per_path.stats.functions_partial,
        "partiality diverges: {what}"
    );
}

#[test]
fn tree_matches_per_path_on_seeded_corpora() {
    for seed in [3, 11, 2016] {
        let program = corpus_program(&KernelConfig::tiny(seed));
        let none = FaultPlan::none();
        let tree = run(&program, ExecMode::Tree, 1, &none);
        let per_path = run(&program, ExecMode::PerPath, 1, &none);
        assert_equivalent(&tree, &per_path, &format!("seed {seed}"));
        // Sanity: the corpus must actually exercise the interesting
        // machinery, or the equivalence is vacuous.
        assert!(tree.stats.functions_analyzed > 10, "seed {seed} corpus too small");
        assert!(tree.stats.blocks_saved > 0, "no prefix sharing at seed {seed}");
        assert!(tree.stats.sat_queries > 0);
    }
}

#[test]
fn tree_matches_per_path_on_adversarial_path_explosion() {
    // The fault suite's adversarial modules: chained diamonds with 2^depth
    // structural paths, truncated by the path cap — maximal prefix
    // sharing plus cap-degradation interplay.
    let config = KernelConfig {
        adversarial_modules: 2,
        adversarial_depth: 12,
        ..KernelConfig::tiny(7)
    };
    let program = corpus_program(&config);
    let none = FaultPlan::none();
    let tree = run(&program, ExecMode::Tree, 1, &none);
    let per_path = run(&program, ExecMode::PerPath, 1, &none);
    assert_equivalent(&tree, &per_path, "adversarial 2^12 CFGs");
    assert!(
        tree.stats.functions_partial > 0,
        "adversarial functions must trip the path cap"
    );
    // The whole point of the tree: shared prefixes of the 100 surviving
    // paths of each adversarial function collapse.
    assert!(tree.stats.blocks_saved > tree.stats.blocks_executed / 10);
}

#[test]
fn tree_parallel_matches_tree_and_per_path_sequential() {
    let program = corpus_program(&KernelConfig::tiny(23));
    let none = FaultPlan::none();
    let tree_seq = run(&program, ExecMode::Tree, 1, &none);
    let tree_par = run(&program, ExecMode::Tree, 4, &none);
    let per_path_seq = run(&program, ExecMode::PerPath, 1, &none);
    let per_path_par = run(&program, ExecMode::PerPath, 4, &none);
    assert_equivalent(&tree_par, &tree_seq, "tree 4 threads vs 1");
    assert_equivalent(&per_path_par, &per_path_seq, "per-path 4 threads vs 1");
    assert_equivalent(&tree_par, &per_path_seq, "tree parallel vs per-path sequential");
    // The memo cache is per-function, so parallelism must not change its
    // effectiveness either.
    assert_eq!(tree_par.stats.sat_memo_hits, tree_seq.stats.sat_memo_hits);
}

#[test]
fn tree_matches_per_path_under_panic_faults() {
    // Panic faults fire before summarization starts (per function and
    // attempt, by name hash), so both modes see the identical
    // panic/retry/degrade schedule; the retry runs with reduced limits in
    // both. Summaries must still match byte for byte.
    let program = corpus_program(&KernelConfig::tiny(11));
    let plan = FaultPlan { seed: 42, panic_rate: 0.08, ..FaultPlan::none() };
    let tree = run(&program, ExecMode::Tree, 1, &plan);
    let per_path = run(&program, ExecMode::PerPath, 1, &plan);
    assert_equivalent(&tree, &per_path, "panic faults");
    assert!(
        !tree.degraded.is_empty(),
        "the plan must actually degrade some functions"
    );
    assert_eq!(
        tree.degraded.keys().collect::<Vec<_>>(),
        per_path.degraded.keys().collect::<Vec<_>>(),
        "both modes must degrade the same functions"
    );
    // And panic faults under parallelism, for good measure.
    let tree_par = run(&program, ExecMode::Tree, 4, &plan);
    assert_equivalent(&tree_par, &per_path, "panic faults, tree parallel");
}

#[test]
fn scheduler_and_cache_match_reference_across_threads_and_faults() {
    // The work-stealing scheduler and the persistent summary cache must
    // be invisible in the output: at every thread count, cold or warm,
    // under every supported fault plan, the summary database and report
    // set are byte-identical to the sequential per-path reference run
    // under the *same* plan. Warm runs are primed under the same plan
    // too: degraded functions are never cached, so they re-execute — and
    // re-fault — identically.
    let program = corpus_program(&KernelConfig::tiny(17));
    let apis = linux_dpm_apis();
    let plans = [
        ("no faults", FaultPlan::none()),
        ("panic faults", FaultPlan { seed: 42, panic_rate: 0.08, ..FaultPlan::none() }),
        ("solver stall", FaultPlan { seed: 9, stall_rate: 0.25, ..FaultPlan::none() }),
    ];
    for (what, plan) in &plans {
        let reference = run(&program, ExecMode::PerPath, 1, plan);
        for threads in [1usize, 2, 8] {
            let options = AnalysisOptions { threads, ..AnalysisOptions::default() };

            let cold = analyze_program_with_faults(&program, &apis, &options, plan);
            assert_equivalent(&cold, &reference, &format!("{what}, {threads} threads, cold"));
            assert_eq!(
                cold.degraded.keys().collect::<Vec<_>>(),
                reference.degraded.keys().collect::<Vec<_>>(),
                "degradation set diverges: {what}, {threads} threads"
            );

            let mut cache = SummaryCache::new();
            let primed =
                analyze_program_cached(&program, &apis, &options, plan, Some(&mut cache));
            assert_equivalent(&primed, &reference, &format!("{what}, {threads} threads, priming"));
            let warm = analyze_program_cached(&program, &apis, &options, plan, Some(&mut cache));
            assert_equivalent(&warm, &reference, &format!("{what}, {threads} threads, warm"));
            assert!(
                warm.stats.cache_hits > 0,
                "warm run must reuse the cache: {what}, {threads} threads"
            );
            assert_eq!(
                warm.stats.cache_hits + warm.stats.cache_misses,
                warm.stats.functions_analyzed,
                "every analyzed function either hits or recomputes (degraded \
                 entries are never cached): {what}, {threads} threads"
            );
        }
    }
}

#[test]
fn tree_matches_per_path_under_solver_stall() {
    // Stalled functions run with fuel 0: no relaxation can propagate in
    // either solver, so both modes answer every query from the raw edges
    // — the zero-fuel equivalence pinned down in the solver's unit tests,
    // here end-to-end.
    let program = corpus_program(&KernelConfig::tiny(11));
    let plan = FaultPlan { seed: 9, stall_rate: 0.25, ..FaultPlan::none() };
    let tree = run(&program, ExecMode::Tree, 1, &plan);
    let per_path = run(&program, ExecMode::PerPath, 1, &plan);
    assert_equivalent(&tree, &per_path, "solver stall (fuel 0)");
    assert!(
        tree.degraded
            .values()
            .any(|d| d.reason == rid_core::DegradeReason::SolverFuel),
        "the stall plan must trip the fuel degradation path"
    );
}
