//! Property-based tests over rid-core: path-enumeration invariants on
//! random CFGs and determinism of the analysis pipeline.

use proptest::prelude::*;
use rid_core::{enumerate_paths, PathLimits};
use rid_ir::{BlockId, Function, FunctionBuilder, Operand, Pred, Rvalue, Terminator};

/// A compact recipe for a random (valid) CFG: per block, whether it
/// branches or returns, and pseudo-random successor picks.
#[derive(Clone, Debug)]
struct CfgRecipe {
    blocks: Vec<(u8, u8, u8)>, // (kind selector, succ1 seed, succ2 seed)
}

fn recipe() -> impl Strategy<Value = CfgRecipe> {
    prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 1..10)
        .prop_map(|blocks| CfgRecipe { blocks })
}

/// Builds a structurally valid function from a recipe. Successors always
/// point at existing blocks; a quarter of blocks return.
fn build(recipe: &CfgRecipe) -> Function {
    let n = recipe.blocks.len();
    let mut b = FunctionBuilder::new("f", ["x"]);
    for _ in 1..n {
        b.new_block();
    }
    for (i, &(kind, s1, s2)) in recipe.blocks.iter().enumerate() {
        b.switch_to(BlockId(i as u32));
        let succ1 = BlockId((s1 as usize % n) as u32);
        let succ2 = BlockId((s2 as usize % n) as u32);
        match kind % 4 {
            0 => {
                b.ret(Operand::Int(i64::from(kind)));
            }
            1 => {
                b.jump(succ1);
            }
            _ => {
                b.assign(
                    format!("c{i}"),
                    Rvalue::cmp(Pred::Gt, Operand::var("x"), Operand::Int(i64::from(s1))),
                );
                b.branch(format!("c{i}"), succ1, succ2);
            }
        }
    }
    b.finish().expect("recipe builds a valid function")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every enumerated path starts at the entry, ends at a return, obeys
    /// the visit limit, follows real CFG edges, and the path count
    /// respects the cap.
    #[test]
    fn enumerated_paths_are_well_formed(r in recipe()) {
        let func = build(&r);
        let limits = PathLimits::default();
        let set = enumerate_paths(&func, &limits);
        prop_assert!(set.paths.len() <= limits.max_paths);
        for path in &set.paths {
            prop_assert_eq!(path.blocks[0], BlockId::ENTRY);
            let last = *path.blocks.last().unwrap();
            prop_assert!(matches!(func.block(last).term, Terminator::Return(_)));
            // Edges are real.
            for pair in path.blocks.windows(2) {
                let succs = func.block(pair[0]).term.successors();
                prop_assert!(succs.contains(&pair[1]));
            }
            // Visit limit respected.
            let mut visits = vec![0u32; func.blocks().len()];
            for block in &path.blocks {
                visits[block.index()] += 1;
            }
            prop_assert!(visits.iter().all(|&v| v <= limits.max_block_visits));
        }
        // Enumeration is deterministic.
        let again = enumerate_paths(&func, &limits);
        prop_assert_eq!(set.paths, again.paths);
    }

    /// Tightening the visit budget never yields more paths.
    #[test]
    fn visit_budget_is_monotone(r in recipe()) {
        let func = build(&r);
        let tight = PathLimits { max_block_visits: 1, ..Default::default() };
        let loose = PathLimits { max_block_visits: 2, ..Default::default() };
        let a = enumerate_paths(&func, &tight);
        let b = enumerate_paths(&func, &loose);
        prop_assert!(a.paths.len() <= b.paths.len());
    }
}

proptest! {
    // Whole-pipeline properties are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any corpus seed produces a parseable corpus on which the analysis
    /// finds every detectable seeded bug and nothing on clean functions.
    #[test]
    fn any_seed_upholds_ground_truth(seed in 0u64..10_000) {
        use rid_corpus::kernel::{generate_kernel, KernelConfig};
        let corpus = generate_kernel(&KernelConfig::tiny(seed));
        let result = rid_core::analyze_sources(
            corpus.sources.iter().map(String::as_str),
            &rid_core::apis::linux_dpm_apis(),
            &rid_core::AnalysisOptions::default(),
        )
        .expect("corpus parses");
        let reported: std::collections::HashSet<&str> =
            result.reports.iter().map(|r| r.function.as_str()).collect();
        for f in corpus.detectable_bug_functions() {
            prop_assert!(reported.contains(f), "seed {seed}: `{f}` missed");
        }
        for f in corpus.missed_bug_functions() {
            prop_assert!(!reported.contains(f), "seed {seed}: `{f}` should be missed");
        }
        // No reports outside seeded bugs and seeded FP idioms.
        let legit: std::collections::HashSet<&str> = corpus
            .bugs
            .iter()
            .map(|b| b.function.as_str())
            .chain(corpus.expected_false_positives.iter().map(String::as_str))
            .collect();
        for report in &result.reports {
            prop_assert!(
                legit.contains(report.function.as_str()),
                "seed {seed}: unexpected report on `{}`",
                report.function
            );
        }
    }
}
