//! Robustness acceptance suite: fault injection, budgets, and graceful
//! degradation (the driver must survive panics, deadlines, and solver
//! stalls, degrading per-function exactly like the §5.2 cap fallback).

use std::collections::BTreeSet;
use std::time::Duration;

use rid_core::apis::linux_dpm_apis;
use rid_core::{
    analyze_program_with_faults, analyze_sources, AnalysisOptions, AnalysisResult, Budget,
    DegradeReason, FaultPlan, PathLimits, Summary,
};
use rid_corpus::kernel::{generate_kernel, KernelConfig};
use rid_frontend::parse_program;
use rid_ir::Program;

fn tiny_program(seed: u64) -> Program {
    let corpus = generate_kernel(&KernelConfig::tiny(seed));
    parse_program(corpus.sources.iter().map(String::as_str)).expect("corpus parses")
}

/// Names of the functions the run actually summarized (skipping the
/// predefined API specs, which are carried through the database).
fn analyzed_functions(result: &AnalysisResult) -> BTreeSet<String> {
    let apis = linux_dpm_apis();
    result
        .summaries
        .iter()
        .map(|s| s.func.as_str().to_owned())
        .filter(|name| !apis.contains(name))
        .collect()
}

fn summary_json(result: &AnalysisResult, name: &str) -> String {
    serde_json::to_string(result.summaries.get(name).expect(name)).unwrap()
}

#[test]
fn faulted_run_completes_with_correct_reasons_and_untouched_functions_identical() {
    let program = tiny_program(11);
    let apis = linux_dpm_apis();
    let options = AnalysisOptions::default();
    let plan = FaultPlan { seed: 42, panic_rate: 0.08, ..FaultPlan::none() };

    let clean = analyze_program_with_faults(&program, &apis, &options, &FaultPlan::none());
    let faulted = analyze_program_with_faults(&program, &apis, &options, &plan);

    let analyzed = analyzed_functions(&clean);
    let hit: Vec<&String> =
        analyzed.iter().filter(|name| plan.should_panic(name, 0)).collect();
    assert!(
        hit.len() >= 2,
        "the plan must fault several analyzed functions, got {hit:?}"
    );

    // Every faulted function completed via the retry path and says so.
    for name in &hit {
        let record = faulted
            .degraded
            .get(name.as_str())
            .unwrap_or_else(|| panic!("{name} missing from degraded map"));
        assert_eq!(record.reason, DegradeReason::Retried, "{name}");
    }

    // Functions the plan did not touch are byte-identical to the clean
    // run: isolation means a panic cannot leak into its neighbours.
    for name in &analyzed {
        if plan.should_panic(name, 0) {
            continue;
        }
        assert_eq!(
            summary_json(&clean, name),
            summary_json(&faulted, name),
            "un-faulted `{name}` must be unaffected"
        );
    }

    // The run still finds the same bugs outside the faulted functions.
    let clean_reports: BTreeSet<&String> = clean
        .reports
        .iter()
        .map(|r| &r.function)
        .filter(|f| !plan.should_panic(f, 0))
        .collect();
    let faulted_reports: BTreeSet<&String> = faulted
        .reports
        .iter()
        .map(|r| &r.function)
        .filter(|f| !plan.should_panic(f, 0))
        .collect();
    assert_eq!(clean_reports, faulted_reports);
}

#[test]
fn parallel_equals_sequential_under_faults() {
    let program = tiny_program(13);
    let apis = linux_dpm_apis();
    let plan = FaultPlan { seed: 7, panic_rate: 0.1, ..FaultPlan::none() };

    let sequential = analyze_program_with_faults(
        &program,
        &apis,
        &AnalysisOptions { threads: 1, ..AnalysisOptions::default() },
        &plan,
    );
    let parallel = analyze_program_with_faults(
        &program,
        &apis,
        &AnalysisOptions { threads: 4, ..AnalysisOptions::default() },
        &plan,
    );

    assert_eq!(sequential.reports, parallel.reports);
    // wall_ms is measured wall-clock (the process's first panic also pays
    // a one-time unwinder-init cost of ~10ms), so compare everything but.
    let timeless = |r: &AnalysisResult| -> Vec<(String, DegradeReason, usize, usize)> {
        r.degraded
            .iter()
            .map(|(n, d)| (n.clone(), d.reason, d.cost.paths, d.cost.states))
            .collect()
    };
    assert_eq!(timeless(&sequential), timeless(&parallel));
    assert!(!sequential.degraded.is_empty(), "plan must actually fault something");
    assert_eq!(
        serde_json::to_string(&sequential.summaries).unwrap(),
        serde_json::to_string(&parallel.summaries).unwrap()
    );
}

#[test]
fn double_panic_degrades_to_default_summary() {
    let src = r#"module m;
        fn boom(dev) { pm_runtime_get_sync(dev); pm_runtime_put(dev); return 0; }
        fn fine(dev) { pm_runtime_get_sync(dev); pm_runtime_put(dev); return 0; }"#;
    let program = parse_program([src]).unwrap();
    let apis = linux_dpm_apis();
    let plan = FaultPlan {
        panic_functions: vec!["boom".into()],
        panic_twice: true,
        ..FaultPlan::none()
    };

    let result =
        analyze_program_with_faults(&program, &apis, &AnalysisOptions::default(), &plan);
    let record = result.degraded.get("boom").expect("boom must be degraded");
    assert_eq!(record.reason, DegradeReason::Panic);
    // The function fell back to exactly the §5.2 default summary.
    assert_eq!(
        serde_json::to_string(result.summaries.get("boom").unwrap()).unwrap(),
        serde_json::to_string(&Summary::default_for("boom")).unwrap()
    );
    // Its neighbour is untouched and clean.
    assert!(!result.degraded.contains_key("fine"));
    assert!(result.summaries.get("fine").is_some());
}

#[test]
fn single_panic_recovers_via_retry() {
    let src = r#"module m;
        fn flaky(dev) {
            let r = pm_runtime_get_sync(dev);
            if (r < 0) { pm_runtime_put(dev); return r; }
            pm_runtime_put(dev);
            return 0;
        }"#;
    let program = parse_program([src]).unwrap();
    let apis = linux_dpm_apis();
    let plan = FaultPlan { panic_functions: vec!["flaky".into()], ..FaultPlan::none() };

    let clean =
        analyze_program_with_faults(&program, &apis, &AnalysisOptions::default(), &FaultPlan::none());
    let faulted =
        analyze_program_with_faults(&program, &apis, &AnalysisOptions::default(), &plan);
    assert_eq!(faulted.degraded.get("flaky").unwrap().reason, DegradeReason::Retried);
    // The retry (reduced limits are still ample here) reproduces the
    // clean summary — the fault cost one retry, not precision.
    assert_eq!(
        serde_json::to_string(clean.summaries.get("flaky").unwrap()).unwrap(),
        serde_json::to_string(faulted.summaries.get("flaky").unwrap()).unwrap()
    );
}

#[test]
fn solver_stall_degrades_to_solver_fuel() {
    let src = r#"module m;
        fn branchy(dev) {
            let r = pm_runtime_get_sync(dev);
            if (r < 0) { pm_runtime_put(dev); return r; }
            pm_runtime_put(dev);
            return 0;
        }"#;
    let program = parse_program([src]).unwrap();
    let apis = linux_dpm_apis();
    let plan = FaultPlan { stall_rate: 1.0, ..FaultPlan::none() };

    let result =
        analyze_program_with_faults(&program, &apis, &AnalysisOptions::default(), &plan);
    let record = result.degraded.get("branchy").expect("stalled function degrades");
    assert_eq!(record.reason, DegradeReason::SolverFuel);
    // Degraded, not dead: a summary exists and it is partial.
    assert!(result.summaries.get("branchy").unwrap().partial);
}

#[test]
fn zero_fuel_budget_reports_solver_fuel() {
    let src = r#"module m;
        fn branchy(dev) {
            let r = pm_runtime_get_sync(dev);
            if (r < 0) { pm_runtime_put(dev); return r; }
            pm_runtime_put(dev);
            return 0;
        }"#;
    let options = AnalysisOptions {
        budget: Budget { solver_fuel: Some(0), ..Budget::unlimited() },
        ..AnalysisOptions::default()
    };
    let result = analyze_sources([src], &linux_dpm_apis(), &options).unwrap();
    assert_eq!(result.degraded.get("branchy").unwrap().reason, DegradeReason::SolverFuel);
}

#[test]
fn explosive_function_completes_within_deadline() {
    // 2^26 structural paths: enumerating them all would take minutes.
    // With an effectively-infinite path cap, only the deadline can stop
    // it — the run must still complete promptly with a Deadline record.
    let config = KernelConfig {
        adversarial_modules: 1,
        adversarial_depth: 26,
        ..KernelConfig::tiny(5)
    };
    let corpus = generate_kernel(&config);
    let program =
        parse_program(corpus.sources.iter().map(String::as_str)).expect("corpus parses");
    let options = AnalysisOptions {
        limits: PathLimits { max_paths: 100_000_000, ..PathLimits::default() },
        budget: Budget {
            func_deadline: Some(Duration::from_millis(80)),
            ..Budget::unlimited()
        },
        ..AnalysisOptions::default()
    };
    let started = std::time::Instant::now();
    let result = analyze_program_with_faults(
        &program,
        &linux_dpm_apis(),
        &options,
        &FaultPlan::none(),
    );
    let explosive = &corpus.adversarial_functions[0];
    let record = result
        .degraded
        .get(explosive)
        .unwrap_or_else(|| panic!("{explosive} must degrade: {:?}", result.degraded));
    assert_eq!(record.reason, DegradeReason::Deadline);
    assert!(result.summaries.get(explosive).unwrap().partial);
    // Generous bound: the whole tiny corpus plus one killed function.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "deadline failed to bound the explosive function"
    );
}

#[test]
fn slow_fault_trips_function_deadline() {
    let src = r#"module m;
        fn sleepy(dev) { pm_runtime_get_sync(dev); pm_runtime_put(dev); return 0; }"#;
    let program = parse_program([src]).unwrap();
    let options = AnalysisOptions {
        budget: Budget {
            func_deadline: Some(Duration::from_millis(20)),
            ..Budget::unlimited()
        },
        ..AnalysisOptions::default()
    };
    let plan = FaultPlan {
        slow_functions: vec!["sleepy".into()],
        slow_ms: 60,
        ..FaultPlan::none()
    };
    let result =
        analyze_program_with_faults(&program, &linux_dpm_apis(), &options, &plan);
    let record = result.degraded.get("sleepy").expect("sleepy must degrade");
    assert_eq!(record.reason, DegradeReason::Deadline);
    assert!(record.cost.wall_ms >= 20, "cost records the sleep: {:?}", record.cost);
}

#[test]
fn path_cap_function_degrades_and_callers_use_fallback() {
    // `explode` has 2^3 = 8 structural paths; with max_paths = 4 it hits
    // the cap, degrades with a PathCap record, and gains the §5.2 default
    // entry. Its caller keeps analyzing against that summary: the r < 0
    // branch is only feasible through the default (unconstrained) entry,
    // so an entry with [0] < 0 in the caller proves the fallback works.
    let src = r#"module m;
        fn explode(dev) {
            pm_runtime_get_sync(dev);
            let c0 = random;
            if (c0 < 0) { dev.a = 1; }
            let c1 = random;
            if (c1 < 0) { dev.b = 1; }
            let c2 = random;
            if (c2 < 0) { dev.c = 1; }
            pm_runtime_put(dev);
            return 0;
        }
        fn caller(dev) {
            let r = explode(dev);
            if (r < 0) { return r; }
            return 0;
        }"#;
    let options = AnalysisOptions {
        limits: PathLimits { max_paths: 4, ..PathLimits::default() },
        ..AnalysisOptions::default()
    };
    let result = analyze_sources([src], &linux_dpm_apis(), &options).unwrap();

    let record = result.degraded.get("explode").expect("explode must degrade");
    assert_eq!(record.reason, DegradeReason::PathCap);
    assert!(record.cost.paths <= 4);

    let explode = result.summaries.get("explode").unwrap();
    assert!(explode.partial);
    assert!(
        explode
            .entries
            .iter()
            .any(|e| e.cons.is_truth() && !e.has_changes() && e.ret.is_none()),
        "partial summary must contain the default entry: {explode:?}"
    );

    // The caller is analyzed normally (not degraded) on top of the
    // partial summary...
    assert!(!result.degraded.contains_key("caller"));
    let caller = result.summaries.get("caller").unwrap();
    // ...and sees the error branch exclusively through the default entry
    // (every real entry of `explode` implies a return of 0).
    use rid_solver::{Conj, Lit, Term, Var};
    let negative = Conj::from_lits([Lit::new(
        rid_ir::Pred::Lt,
        Term::var(Var::ret()),
        Term::int(0),
    )]);
    assert!(
        caller.entries.iter().any(|e| e.cons.implies(&negative)),
        "caller must have an error-path entry via the fallback: {caller:?}"
    );
}
