//! Summary persistence and separate-module analysis (§5.3 of the paper).
//!
//! RID can analyze a multi-file program one compilation unit at a time:
//! summaries computed for one unit are saved and reused when dependent
//! units are analyzed. The proper order is the reverse topological order
//! of the *module dependency graph* (module A depends on B when A uses a
//! symbol B defines); mutually dependent modules (an SCC) are linked and
//! analyzed together, exactly as §5.3 describes.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::io::Write as _;
use std::path::Path;

use rid_ir::{Module, Program};

use crate::driver::{analyze_program, AnalysisOptions, AnalysisResult};
use crate::summary::SummaryDb;

/// Writes `bytes` to `path` atomically: data goes to a temporary sibling
/// first, is fsynced, and is renamed over `path`; finally the containing
/// directory is fsynced so the rename itself survives a power cut. A
/// crash at any point leaves either the old file or the new file —
/// never a torn mix — which is the invariant `rid serve --state-dir`
/// snapshots depend on.
///
/// # Errors
///
/// Returns an I/O error if the temporary cannot be written, synced, or
/// renamed; the temporary is removed on failure.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    // Process id in the name keeps two daemons snapshotting into the
    // same directory from clobbering each other's in-flight temp file.
    let tmp = dir.join(format!(".{}.{}.tmp", file_name.to_string_lossy(), std::process::id()));
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // Rename durability: fsync the directory. Not all filesystems allow
    // opening a directory for sync; degrade silently there (the rename
    // is still atomic, just not yet durable).
    if let Ok(dirfd) = fs::File::open(&dir) {
        let _ = dirfd.sync_all();
    }
    Ok(())
}

/// Saves a summary database as JSON.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be written.
pub fn save_db(db: &SummaryDb, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string_pretty(db)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    atomic_write(path, json.as_bytes())
}

/// Loads a summary database saved by [`save_db`].
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read or parsed.
pub fn load_db(path: &Path) -> io::Result<SummaryDb> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// A persisted analysis state: everything [`crate::incremental::reanalyze`]
/// needs to resume work in a later process (reports, summaries, the
/// classification, and degradation records; statistics are not carried
/// over).
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct AnalysisState {
    /// Reports of the saved run.
    pub reports: Vec<crate::ipp::IppReport>,
    /// Summary database of the saved run.
    pub summaries: SummaryDb,
    /// Classification of the saved run.
    pub classification: crate::classify::Classification,
    /// Degradation records of the saved run. Defaults to empty so states
    /// saved before this field existed still load.
    #[serde(default)]
    pub degraded: std::collections::BTreeMap<String, crate::budget::Degradation>,
}

impl From<&AnalysisResult> for AnalysisState {
    fn from(result: &AnalysisResult) -> Self {
        AnalysisState {
            reports: result.reports.clone(),
            summaries: result.summaries.clone(),
            classification: result.classification.clone(),
            degraded: result.degraded.clone(),
        }
    }
}

impl From<AnalysisState> for AnalysisResult {
    fn from(state: AnalysisState) -> Self {
        AnalysisResult {
            reports: state.reports,
            summaries: state.summaries,
            classification: state.classification,
            stats: crate::driver::AnalysisStats::default(),
            degraded: state.degraded,
        }
    }
}

/// Saves an analysis state as JSON (see [`AnalysisState`]).
///
/// # Errors
///
/// Returns an I/O error if the file cannot be written.
pub fn save_state(result: &AnalysisResult, path: &Path) -> io::Result<()> {
    let state = AnalysisState::from(result);
    let json = serde_json::to_string(&state)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    atomic_write(path, json.as_bytes())
}

/// Loads an analysis state saved by [`save_state`].
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read or parsed.
pub fn load_state(path: &Path) -> io::Result<AnalysisResult> {
    let json = fs::read_to_string(path)?;
    let state: AnalysisState =
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(state.into())
}

/// Saves a persistent summary cache as a RIDSS1 indexed container (see
/// [`crate::store`]). Entries the run left untouched in the cache's
/// backing store are copied through as verified raw bytes; only resident
/// (freshly computed) entries are re-serialized.
///
/// # Errors
///
/// Returns an I/O error if the container cannot be built or written.
pub fn save_cache(cache: &crate::cache::SummaryCache, path: &Path) -> io::Result<()> {
    let bytes =
        crate::store::write_store_bytes(&cache.schema, &cache.entries, cache.backing_store())?;
    atomic_write(path, &bytes)
}

/// Loads a summary cache saved by [`save_cache`].
///
/// A RIDSS1 container opens **lazily**: only the header and offset index
/// are read here; entry payloads are fetched and parsed per probe. A
/// legacy JSON cache (pre-container builds) is still recognized and
/// parsed eagerly. Either way, caches written under a different
/// [`crate::cache::CACHE_SCHEMA`] are rejected — stale on-disk formats
/// must miss loudly rather than corrupt a run.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read, parsed, or carries a
/// different schema tag.
pub fn load_cache(path: &Path) -> io::Result<crate::cache::SummaryCache> {
    let mut magic = [0u8; 8];
    {
        use std::io::Read as _;
        let mut file = fs::File::open(path)?;
        let n = file.read(&mut magic)?;
        if n < magic.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "summary cache: truncated"));
        }
    }
    let cache = if &magic == crate::store::STORE_MAGIC {
        crate::cache::SummaryCache::from_store(crate::store::SummaryStore::open(path)?)
    } else {
        let json = fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
    };
    if cache.schema != crate::cache::CACHE_SCHEMA {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "summary cache schema mismatch: found {:?}, expected {:?}",
                cache.schema,
                crate::cache::CACHE_SCHEMA
            ),
        ));
    }
    Ok(cache)
}

/// The module dependency graph: `groups` are SCCs of mutually dependent
/// modules in reverse topological order (dependencies first); modules in
/// one group must be linked and analyzed together (§5.3).
#[derive(Clone, Debug)]
pub struct ModulePlan {
    /// SCC groups of module indices, dependencies first.
    pub groups: Vec<Vec<usize>>,
}

/// Computes the §5.3 analysis plan for a set of modules.
#[must_use]
pub fn module_plan(modules: &[Module]) -> ModulePlan {
    // definer[symbol] = module index
    let mut definer: HashMap<&str, usize> = HashMap::new();
    for (i, module) in modules.iter().enumerate() {
        for func in module.functions() {
            definer.entry(func.name()).or_insert(i);
        }
    }
    // edges: A -> B when A uses a symbol defined in B.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); modules.len()];
    for (i, module) in modules.iter().enumerate() {
        for symbol in module.undefined_references() {
            if let Some(&j) = definer.get(symbol) {
                if j != i {
                    edges[i].push(j);
                }
            }
        }
        edges[i].sort_unstable();
        edges[i].dedup();
    }
    ModulePlan { groups: tarjan_sccs(modules.len(), &edges) }
}

/// Tarjan's SCC algorithm over an adjacency list; components are returned
/// in reverse topological order (a component after everything it reaches).
pub(crate) fn tarjan_sccs(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNVISITED: u32 = u32::MAX;
    #[derive(Clone, Copy)]
    struct NodeData {
        index: u32,
        lowlink: u32,
        on_stack: bool,
    }
    let mut data = vec![NodeData { index: UNVISITED, lowlink: 0, on_stack: false }; n];
    let mut next_index = 0u32;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for start in 0..n {
        if data[start].index != UNVISITED {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        data[start].index = next_index;
        data[start].lowlink = next_index;
        next_index += 1;
        stack.push(start);
        data[start].on_stack = true;

        while let Some(&mut (v, ref mut child)) = call_stack.last_mut() {
            if *child < edges[v].len() {
                let w = edges[v][*child];
                *child += 1;
                if data[w].index == UNVISITED {
                    data[w].index = next_index;
                    data[w].lowlink = next_index;
                    next_index += 1;
                    stack.push(w);
                    data[w].on_stack = true;
                    call_stack.push((w, 0));
                } else if data[w].on_stack {
                    data[v].lowlink = data[v].lowlink.min(data[w].index);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    let low = data[v].lowlink;
                    data[parent].lowlink = data[parent].lowlink.min(low);
                }
                if data[v].lowlink == data[v].index {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        data[w].on_stack = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    sccs.push(component);
                }
            }
        }
    }
    sccs
}

/// Analyzes modules separately in dependency order (§5.3), carrying the
/// summary database from group to group. Returns the merged result; the
/// reports are the concatenation over groups, re-sorted.
///
/// # Errors
///
/// Returns a link error when a group's modules contain duplicate strong
/// definitions.
pub fn analyze_modules_separately(
    modules: &[Module],
    predefined: &SummaryDb,
    options: &AnalysisOptions,
) -> Result<AnalysisResult, rid_ir::ProgramError> {
    let plan = module_plan(modules);
    let mut db = predefined.clone();
    let mut all_reports = Vec::new();
    let mut stats = crate::driver::AnalysisStats::default();
    let mut classification = crate::classify::Classification::default();
    let mut degraded = std::collections::BTreeMap::new();

    for group in &plan.groups {
        let mut program = Program::new();
        for &i in group {
            program.link(modules[i].clone())?;
        }
        let result = analyze_program(&program, &db, options);
        db = result.summaries;
        all_reports.extend(result.reports);
        degraded.extend(result.degraded);
        // One merge path for *all* stats fields (see
        // `AnalysisStats::absorb`) — the old by-hand sum here silently
        // dropped every counter added after it was written.
        stats.absorb(&result.stats);
        classification = result.classification;
    }

    all_reports.sort_by(|a, b| {
        (&a.function, &a.refcount, a.path_a, a.path_b).cmp(&(
            &b.function,
            &b.refcount,
            b.path_a,
            b.path_b,
        ))
    });
    Ok(AnalysisResult { reports: all_reports, summaries: db, classification, stats, degraded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::linux_dpm_apis;
    use rid_frontend::parse_module;

    #[test]
    fn tarjan_handles_cycles_and_order() {
        // 0 -> 1 -> 2 -> 1, 3 isolated
        let edges = vec![vec![1], vec![2], vec![1], vec![]];
        let sccs = tarjan_sccs(4, &edges);
        assert!(sccs.contains(&vec![1, 2]));
        // {1,2} must come before {0} (0 depends on it).
        let pos12 = sccs.iter().position(|c| c == &vec![1, 2]).unwrap();
        let pos0 = sccs.iter().position(|c| c == &vec![0]).unwrap();
        assert!(pos12 < pos0);
    }

    #[test]
    fn module_plan_orders_dependencies_first() {
        let lib = parse_module("module lib; fn helper(dev) { pm_runtime_get(dev); return; }")
            .unwrap();
        let app =
            parse_module("module app; fn main_fn(dev) { helper(dev); return; }").unwrap();
        let modules = vec![app, lib];
        let plan = module_plan(&modules);
        assert_eq!(plan.groups, vec![vec![1], vec![0]]);
    }

    #[test]
    fn mutually_dependent_modules_group_together() {
        let a = parse_module("module a; fn fa() { fb(); return; }").unwrap();
        let b = parse_module("module b; fn fb() { fa(); return; }").unwrap();
        let plan = module_plan(&[a, b]);
        assert_eq!(plan.groups, vec![vec![0, 1]]);
    }

    #[test]
    fn separate_analysis_matches_linked_analysis() {
        let lib_src = r#"module lib;
            extern fn pm_runtime_get_sync;
            fn get_dev(dev) {
                let r = pm_runtime_get_sync(dev);
                if (r < 0) { return r; }
                return 0;
            }"#;
        let app_src = r#"module app;
            fn use_dev(dev) {
                let r = get_dev(dev);
                if (r) { return r; }
                pm_runtime_put(dev);
                return 0;
            }"#;
        let options = AnalysisOptions::default();
        let apis = linux_dpm_apis();

        let linked =
            crate::driver::analyze_sources([lib_src, app_src], &apis, &options).unwrap();
        let modules =
            vec![parse_module(app_src).unwrap(), parse_module(lib_src).unwrap()];
        let separate = analyze_modules_separately(&modules, &apis, &options).unwrap();

        let key = |r: &crate::ipp::IppReport| (r.function.clone(), r.refcount.clone());
        let mut a: Vec<_> = linked.reports.iter().map(key).collect();
        let mut b: Vec<_> = separate.reports.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn db_save_load_roundtrip() {
        let dir = std::env::temp_dir().join("rid-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        let db = linux_dpm_apis();
        save_db(&db, &path).unwrap();
        let back = load_db(&path).unwrap();
        assert_eq!(back.len(), db.len());
        assert!(back.get("pm_runtime_get_sync").unwrap().changes_refcounts());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analysis_state_roundtrip() {
        let src = r#"module m;
            fn leak(dev) {
                let r = chk(dev);
                if (r < 0) { return 0; }
                pm_runtime_get_sync(dev);
                return 0;
            }"#;
        let result = crate::driver::analyze_sources(
            [src],
            &linux_dpm_apis(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        let dir = std::env::temp_dir().join("rid-state-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        save_state(&result, &path).unwrap();
        let back = load_state(&path).unwrap();
        assert_eq!(back.reports.len(), result.reports.len());
        assert_eq!(back.reports[0].function, "leak");
        assert_eq!(back.summaries.len(), result.summaries.len());
        assert_eq!(
            back.classification.category("leak"),
            result.classification.category("leak")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn degradation_records_roundtrip() {
        use crate::budget::{Degradation, DegradeReason, FunctionCost};
        let mut result = crate::driver::analyze_sources(
            ["module m; fn f(dev) { pm_runtime_get(dev); pm_runtime_put(dev); return; }"],
            &linux_dpm_apis(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        result.degraded.insert(
            "f".to_owned(),
            Degradation {
                reason: DegradeReason::Deadline,
                cost: FunctionCost { paths: 12, states: 34, wall_ms: 56 },
            },
        );
        result.degraded.insert(
            "g".to_owned(),
            Degradation { reason: DegradeReason::Panic, cost: FunctionCost::default() },
        );

        let dir = std::env::temp_dir().join("rid-degrade-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        save_state(&result, &path).unwrap();
        let back = load_state(&path).unwrap();
        assert_eq!(back.degraded, result.degraded);
        let f = &back.degraded["f"];
        assert_eq!(f.reason, DegradeReason::Deadline);
        assert_eq!((f.cost.paths, f.cost.states, f.cost.wall_ms), (12, 34, 56));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn old_states_without_degradations_still_load() {
        // A state serialized before the `degraded` field existed: the
        // field is absent from the JSON and must default to empty. Build
        // such a state by stripping the field from a fresh serialization.
        let full = serde_json::to_string(&AnalysisState::default()).unwrap();
        let json = full
            .replace(",\"degraded\":{}", "")
            .replace("\"degraded\":{},", "")
            .replace("\"degraded\":{}", "");
        assert_ne!(full, json, "new states must carry the degraded field");
        let state: AnalysisState = serde_json::from_str(&json).unwrap();
        assert!(state.degraded.is_empty());
        let result: AnalysisResult = state.into();
        assert!(result.degraded.is_empty());
    }

    #[test]
    fn cache_save_load_roundtrip_and_schema_check() {
        // `leaky` has an IPP, so the cached entry carries a report and the
        // round-trip covers the full report shape — including the block
        // traces the renderer prints.
        let src = r#"module m;
            fn driver(dev) { pm_runtime_get(dev); pm_runtime_put(dev); return; }
            fn leaky(dev, set) {
                let ret = pm_runtime_get_sync(dev);
                if (ret < 0) { return ret; }
                ret = helper_set_config(set);
                pm_runtime_put_autosuspend(dev);
                return ret;
            }"#;
        let program = rid_frontend::parse_program([src]).unwrap();
        let mut cache = crate::cache::SummaryCache::new();
        let _ = crate::driver::analyze_program_cached(
            &program,
            &linux_dpm_apis(),
            &AnalysisOptions::default(),
            &crate::fault::FaultPlan::none(),
            Some(&mut cache),
        );
        assert!(!cache.is_empty());

        let dir = std::env::temp_dir().join("rid-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        save_cache(&cache, &path).unwrap();
        let back = load_cache(&path).unwrap();
        assert_eq!(back.len(), cache.len());
        assert_eq!(
            back.get("driver").unwrap().key,
            cache.get("driver").unwrap().key
        );
        let (orig, trip) = (cache.get("leaky").unwrap(), back.get("leaky").unwrap());
        assert!(!orig.reports.is_empty());
        assert_eq!(orig.reports, trip.reports, "reports must survive persistence");
        assert!(!trip.reports[0].trace_a.is_empty(), "block traces must persist");

        // A cache with a foreign schema tag must be rejected loudly. The
        // container is binary now, so patch the schema bytes in place
        // (same length, and the header is not covered by the index
        // checksum, so the file still opens — and must then be refused).
        let mut bytes = std::fs::read(&path).unwrap();
        let schema = crate::cache::CACHE_SCHEMA.as_bytes();
        let at = bytes
            .windows(schema.len())
            .position(|w| w == schema)
            .expect("schema tag present in header");
        bytes[at..at + schema.len()].copy_from_slice(b"rid-summary-cache/v0");
        std::fs::write(&path, bytes).unwrap();
        assert!(load_cache(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("rid-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp files survive a successful write.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        // A path with no file name is rejected, not panicked on.
        assert!(atomic_write(Path::new("/"), b"x").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_db_rejects_garbage() {
        let dir = std::env::temp_dir().join("rid-persist-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(load_db(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
