//! Whole-program analysis driver (§5.2–5.3 of the paper).
//!
//! The driver classifies functions (selective analysis), walks the call
//! graph bottom-up, summarizes each analyzed function, runs IPP checking
//! on its path summaries, and accumulates reports.
//!
//! Parallelism (§5.3) is **dependency-driven**: the SCC condensation of
//! the call graph is built once, every component carries a counter of its
//! unfinished callee components, and a persistent pool of workers (spawned
//! once per analysis, not once per level) pops ready components from
//! per-worker deques, stealing from siblings when idle. A component
//! becomes schedulable the instant its last callee finishes — no level
//! barrier, so one slow function stalls only its own transitive callers,
//! never the whole wave. Completed summaries are published into lock-free
//! per-function slots; the counters guarantee every slot a caller reads is
//! already set, so the read path takes no lock at all. Recursion is broken
//! by processing each SCC as one sequential work unit in function-index
//! order, with calls to not-yet-summarized members falling back to the
//! default summary — deterministic at every thread count.
//!
//! The driver is *fault tolerant*: each function is summarized inside a
//! `catch_unwind` envelope, so a panic poisons only that function, never
//! a worker or the run. A panicked function gets one immediate retry with
//! reduced limits; if that fails too it degrades to the default summary —
//! exactly the §5.2 fallback for cap hits — and the incident is recorded
//! in [`AnalysisResult::degraded`]. Degraded functions still publish a
//! summary and unblock their callers' counters, so the schedule always
//! drains. Wall-clock and solver-fuel budgets ([`Budget`]) degrade the
//! same way, cooperatively (no thread is ever killed).
//!
//! A persistent [`SummaryCache`] (see [`crate::cache`]) can be threaded
//! through [`analyze_program_cached`]: functions whose content key is
//! unchanged skip summarization and checking entirely, making warm
//! re-runs of an unchanged corpus jump straight to the answer.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rid_ir::{Function, Program};
use rid_solver::SatOptions;
use serde::{Deserialize, Serialize};

use crate::budget::{Budget, BudgetMeter, Degradation, DegradeReason, FunctionCost};
use crate::cache::{cache_salt, function_keys, CacheProbe, SummaryCache};
use crate::callgraph::CallGraph;
use crate::classify::{classify, CategoryCounts, Classification};
use crate::exec::{summarize_paths_view, ExecMode, SummarizeOutcome, SummaryView};
use crate::fault::FaultPlan;
use crate::ipp::{build_summary, check_ipps, IppOutcome, IppReport};
use crate::paths::PathLimits;
use crate::summary::{Summary, SummaryDb};

/// Options controlling a whole-program analysis.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisOptions {
    /// Path/subcase/entry limits (§5.2, §6.1).
    pub limits: PathLimits,
    /// Constraint-solver options.
    pub sat: SatOptions,
    /// Enable the §5.2 selective analysis (classify first, skip category-3
    /// functions). When disabled every function is analyzed.
    pub selective: bool,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Enable the callback-contract extension (the paper's §7 future
    /// work): registered callbacks are re-checked with return-value
    /// distinctions removed, catching the Figure 10 class. Uses
    /// [`crate::callbacks::CallbackModel::linux_default`].
    pub check_callbacks: bool,
    /// Wall-clock / solver-fuel budgets; unlimited by default.
    pub budget: Budget,
    /// Execution strategy for summarization: adaptive per-function choice
    /// (default), shared-prefix tree execution, or the standalone per-path
    /// reference mode. All produce identical summaries.
    pub exec_mode: ExecMode,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            limits: PathLimits::default(),
            sat: SatOptions::default(),
            selective: true,
            threads: 1,
            check_callbacks: false,
            budget: Budget::unlimited(),
            exec_mode: ExecMode::default(),
        }
    }
}

/// Statistics from one analysis run (§6.5-style reporting).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Total functions in the program.
    pub functions_total: usize,
    /// Functions symbolically analyzed (cache hits included).
    pub functions_analyzed: usize,
    /// Structural paths enumerated across all functions.
    pub paths_enumerated: usize,
    /// Symbolic states explored (feasible forks).
    pub states_explored: usize,
    /// Functions whose analysis hit a limit (partial summaries).
    pub functions_partial: usize,
    /// Table-1 census (zeroed when selective analysis is off).
    pub counts: CategoryCounts,
    /// Satisfiability queries issued by the executors.
    pub sat_queries: usize,
    /// Of those, answered from the conjunction-keyed memo cache.
    pub sat_memo_hits: usize,
    /// Basic blocks executed symbolically.
    pub blocks_executed: usize,
    /// Blocks skipped thanks to shared-prefix tree execution (an upper
    /// bound; 0 in per-path mode).
    pub blocks_saved: usize,
    /// Functions executed in tree mode (after [`ExecMode::Auto`]
    /// resolution; cache hits execute nothing and count in neither).
    #[serde(default)]
    pub exec_tree: usize,
    /// Functions executed in per-path mode (after [`ExecMode::Auto`]
    /// resolution).
    #[serde(default)]
    pub exec_per_path: usize,
    /// Functions answered from the persistent summary cache.
    #[serde(default)]
    pub cache_hits: usize,
    /// Functions absent from the cache (computed fresh).
    #[serde(default)]
    pub cache_misses: usize,
    /// Functions present in the cache under a stale key (their content
    /// cone changed; recomputed).
    #[serde(default)]
    pub cache_invalidated: usize,
    /// Satisfiability queries answered "satisfiable".
    #[serde(default)]
    pub sat_sat: usize,
    /// Satisfiability queries answered "unsatisfiable".
    #[serde(default)]
    pub sat_unsat: usize,
    /// Incremental-solver snapshots taken at fork points (tree mode).
    #[serde(default)]
    pub solver_snapshots: usize,
    /// Largest literal depth among snapshotted solvers.
    #[serde(default)]
    pub snapshot_depth_max: usize,
    /// Components a worker obtained by stealing from a sibling's deque
    /// (0 in sequential runs).
    #[serde(default)]
    pub steals: usize,
    /// High-water mark of ready components queued across all deques
    /// (0 in sequential runs).
    #[serde(default)]
    pub queue_depth_max: usize,
    /// Wall-clock time spent classifying.
    pub classify_time: Duration,
    /// Wall-clock time spent summarizing + IPP checking.
    pub analyze_time: Duration,
}

impl AnalysisStats {
    /// Folds another stats record into this one: additive fields sum,
    /// high-water marks take the max. This is the *single* merge path —
    /// the parallel driver, incremental re-analysis, and per-module
    /// analysis all route through it, so a counter added to the struct
    /// cannot be silently dropped by one of the merge sites again.
    pub fn absorb(&mut self, other: &AnalysisStats) {
        self.functions_total += other.functions_total;
        self.functions_analyzed += other.functions_analyzed;
        self.paths_enumerated += other.paths_enumerated;
        self.states_explored += other.states_explored;
        self.functions_partial += other.functions_partial;
        self.counts.refcount_changing += other.counts.refcount_changing;
        self.counts.affecting_analyzed += other.counts.affecting_analyzed;
        self.counts.affecting_skipped += other.counts.affecting_skipped;
        self.counts.other += other.counts.other;
        self.sat_queries += other.sat_queries;
        self.sat_memo_hits += other.sat_memo_hits;
        self.blocks_executed += other.blocks_executed;
        self.blocks_saved += other.blocks_saved;
        self.exec_tree += other.exec_tree;
        self.exec_per_path += other.exec_per_path;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_invalidated += other.cache_invalidated;
        self.sat_sat += other.sat_sat;
        self.sat_unsat += other.sat_unsat;
        self.solver_snapshots += other.solver_snapshots;
        self.snapshot_depth_max = self.snapshot_depth_max.max(other.snapshot_depth_max);
        self.steals += other.steals;
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        self.classify_time += other.classify_time;
        self.analyze_time += other.analyze_time;
    }

    /// Tallies one function's [`SummarizeOutcome`] — the single place
    /// executor counters flow into run statistics (the driver, the
    /// incremental re-analyzer, and any future caller share it).
    pub(crate) fn record_outcome(&mut self, outcome: &SummarizeOutcome) {
        self.functions_analyzed += 1;
        self.paths_enumerated += outcome.paths_enumerated;
        self.states_explored += outcome.states_explored;
        self.functions_partial += usize::from(outcome.partial);
        self.sat_queries += outcome.sat_queries;
        self.sat_memo_hits += outcome.sat_memo_hits;
        self.sat_sat += outcome.sat_sat;
        self.sat_unsat += outcome.sat_unsat;
        self.solver_snapshots += outcome.solver_snapshots;
        self.snapshot_depth_max = self.snapshot_depth_max.max(outcome.snapshot_depth_max);
        self.blocks_executed += outcome.blocks_executed;
        self.blocks_saved += outcome.blocks_saved;
        match outcome.mode_used {
            ExecMode::Tree => self.exec_tree += 1,
            ExecMode::PerPath => self.exec_per_path += 1,
            ExecMode::Auto => debug_assert!(false, "Auto resolves before execution"),
        }
    }
}

/// The result of analyzing a program.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// All IPP bug reports, sorted by function name then refcount.
    pub reports: Vec<IppReport>,
    /// Computed summaries (plus the predefined ones).
    pub summaries: SummaryDb,
    /// The classification used (empty when selective analysis is off).
    pub classification: Classification,
    /// Run statistics.
    pub stats: AnalysisStats,
    /// Per-function degradation records: why a function fell back toward
    /// the default summary and what its analysis cost. Sorted by name.
    pub degraded: BTreeMap<String, Degradation>,
}

/// Halves every structural limit (floor 1) for the post-panic retry, so
/// the retry is cheaper and more likely to dodge whatever blew up.
pub(crate) fn reduced_limits(limits: &PathLimits) -> PathLimits {
    PathLimits {
        max_paths: (limits.max_paths / 2).max(1),
        max_block_visits: limits.max_block_visits,
        max_subcases: (limits.max_subcases / 2).max(1),
        max_entries: (limits.max_entries / 2).max(1),
    }
}

/// One guarded summarization attempt: fault injection, summarization, and
/// IPP checking inside a `catch_unwind` envelope. `Err(())` means the
/// attempt panicked (the payload is dropped; the panic hook has already
/// printed it). The shared state we touch is a read-only summary view
/// plus value-typed options, so unwinding cannot leave it inconsistent —
/// hence the `AssertUnwindSafe`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn guarded_attempt(
    func: &Function,
    db: SummaryView<'_>,
    limits: &PathLimits,
    sat: SatOptions,
    meter: &BudgetMeter,
    fuel: Option<u64>,
    faults: &FaultPlan,
    attempt: u32,
    mode: ExecMode,
) -> Result<(SummarizeOutcome, IppOutcome), ()> {
    catch_unwind(AssertUnwindSafe(|| {
        faults.inject(func.name(), attempt);
        let outcome = {
            let mut span = rid_obs::span(rid_obs::SpanKind::Exec, func.name());
            let outcome = summarize_paths_view(func, db, limits, sat, meter, fuel, mode);
            span.set_value(outcome.path_entries.len() as u64);
            outcome
        };
        let ipp = check_ipps(func.name(), &outcome.path_entries, sat);
        (outcome, ipp)
    }))
    .map_err(|_| ())
}

/// Effective solver fuel for `name`: the configured budget, or zero when
/// the fault plan stalls this function's solver.
pub(crate) fn effective_fuel(budget: &Budget, faults: &FaultPlan, name: &str) -> Option<u64> {
    if faults.should_stall(name) {
        Some(0)
    } else {
        budget.solver_fuel
    }
}

/// Analyzes a whole program.
///
/// `predefined` supplies refcount API specifications (§5.1); they shadow
/// same-named definitions. See [`AnalysisOptions`] for knobs.
#[must_use]
pub fn analyze_program(
    program: &Program,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
) -> AnalysisResult {
    analyze_program_cached(program, predefined, options, &FaultPlan::none(), None)
}

/// Like [`analyze_program`], but with a [`FaultPlan`] injecting
/// deterministic panics, slowdowns, and solver stalls — the robustness
/// test harness. Production callers use [`analyze_program`], which passes
/// [`FaultPlan::none`].
#[must_use]
pub fn analyze_program_with_faults(
    program: &Program,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
    faults: &FaultPlan,
) -> AnalysisResult {
    analyze_program_cached(program, predefined, options, faults, None)
}

/// Everything one worker accumulates locally; merged (in worker-index
/// order) after the pool drains, so the hot path never touches a shared
/// lock for bookkeeping.
#[derive(Default)]
struct WorkerOut {
    stats: AnalysisStats,
    reports: Vec<IppReport>,
    degraded: Vec<(String, Degradation)>,
    /// Fresh, non-degraded results to write back to the cache:
    /// `(function index, key, summary, its reports)`.
    fresh: Vec<(usize, u128, Summary, Vec<IppReport>)>,
}

/// The work-stealing core: per-worker deques of ready components, a
/// count of unfinished components, and a gate for idle workers.
///
/// Invariants (see DESIGN.md §10): a component is pushed exactly once —
/// by the worker that completes its *last* unfinished callee (the
/// `remaining` counter's fetch-sub observes 1) or at seed time for leaf
/// components; `pending` counts scheduled-but-unfinished components and
/// is the sole termination signal; `queued` is a hint that lets an idle
/// worker distinguish "all work in flight" from "work available but
/// momentarily missed", closing the sleep/notify race.
struct Scheduler {
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Components seeded or unlocked but not yet finished.
    pending: AtomicUsize,
    /// Components currently sitting in some deque.
    queued: AtomicUsize,
    /// High-water mark of `queued` (observability only).
    depth_max: AtomicUsize,
    gate: Mutex<()>,
    idle: Condvar,
}

impl Scheduler {
    fn new(workers: usize, pending: usize) -> Scheduler {
        Scheduler {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(pending),
            queued: AtomicUsize::new(0),
            depth_max: AtomicUsize::new(0),
            gate: Mutex::new(()),
            idle: Condvar::new(),
        }
    }

    /// Makes `comp` ready on `worker`'s deque and wakes one sleeper. The
    /// `queued` increment happens before the push, and the gate is cycled
    /// before notifying: any worker that checked `queued` too early is
    /// either still outside the gate (and will re-check) or already
    /// registered on the condvar (and will be woken).
    fn push(&self, worker: usize, comp: usize) {
        let depth = self.queued.fetch_add(1, Ordering::SeqCst) + 1;
        self.depth_max.fetch_max(depth, Ordering::Relaxed);
        self.deques[worker].lock().push_back(comp);
        drop(self.gate.lock());
        self.idle.notify_one();
    }

    /// Pops from `worker`'s own deque (LIFO: freshly unlocked components
    /// are cache-warm) or steals the oldest entry from a sibling. The
    /// boolean is `true` when the component was stolen.
    fn pop(&self, worker: usize) -> Option<(usize, bool)> {
        if let Some(c) = self.deques[worker].lock().pop_back() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some((c, false));
        }
        let n = self.deques.len();
        let mut span = rid_obs::span(rid_obs::SpanKind::Steal, "scan");
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(c) = self.deques[victim].lock().pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                span.set_value(1);
                return Some((c, true));
            }
        }
        None
    }

    /// Marks one component finished; wakes everyone when it was the last
    /// so idle workers can exit.
    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            drop(self.gate.lock());
            self.idle.notify_all();
        }
    }

    /// Parks `worker` until work might be available or the run is over.
    /// Returns `false` when the run is complete.
    fn wait(&self) -> bool {
        if self.pending.load(Ordering::SeqCst) == 0 {
            return false;
        }
        let guard = self.gate.lock();
        if self.pending.load(Ordering::SeqCst) == 0 {
            return false;
        }
        if self.queued.load(Ordering::SeqCst) > 0 {
            return true; // missed work: retry immediately
        }
        // The timeout is insurance only; the push/finish protocol above
        // guarantees a wakeup.
        let _guard = self.idle.wait_for(guard, Duration::from_millis(10));
        true
    }
}

/// Analyzes a whole program with an optional persistent summary cache
/// and a fault plan.
///
/// This is the full-control entry point [`analyze_program`] and
/// [`analyze_program_with_faults`] delegate to. When `cache` is given,
/// functions whose content key matches a cached entry reuse the stored
/// summary and reports (counted in [`AnalysisStats::cache_hits`]), and
/// every fresh non-degraded result is written back. Degraded results are
/// never cached — that is what makes the cache sound under budgets and
/// fault plans (see [`crate::cache`]).
#[must_use]
pub fn analyze_program_cached(
    program: &Program,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
    faults: &FaultPlan,
    mut cache: Option<&mut SummaryCache>,
) -> AnalysisResult {
    let graph = CallGraph::build(program);
    let functions = program.functions();

    let classify_start = Instant::now();
    let classification = if options.selective {
        classify(program, &graph, predefined)
    } else {
        Classification::default()
    };
    let classify_time = classify_start.elapsed();

    let should_analyze = |name: &str| -> bool {
        if predefined.contains(name) {
            return false; // predefined summaries shadow bodies (§5.1)
        }
        if !options.selective {
            return true;
        }
        classification.category(name).is_analyzed()
    };

    let analyze_start = Instant::now();
    let global_deadline = options.budget.global_deadline.map(|d| analyze_start + d);

    // Dependency structure: one node per SCC, counters over *active*
    // callee components only (inactive components publish nothing, so
    // nobody needs to wait for them).
    let cond = graph.condensation();
    let n_comps = cond.members.len();
    let active: Vec<bool> = cond
        .members
        .iter()
        .map(|members| members.iter().any(|&i| should_analyze(functions[i].name())))
        .collect();
    let keys: Vec<Option<u128>> = if cache.is_some() {
        let salt = cache_salt(options, predefined);
        function_keys(&functions, &cond, &active, salt)
    } else {
        vec![None; functions.len()]
    };

    let active_total = active.iter().filter(|&&a| a).count();
    let workers = options.threads.max(1).min(active_total.max(1));

    // Lock-free summary publication: dependency counting guarantees every
    // slot a caller reads is set before the caller is scheduled.
    let slots: Vec<OnceLock<Summary>> = (0..functions.len()).map(|_| OnceLock::new()).collect();
    let cache_ro: Option<&SummaryCache> = cache.as_deref();

    // One SCC is one work unit: members in index order, so calls to
    // not-yet-summarized members deterministically fall back to the
    // default summary regardless of thread count.
    let process_comp = |c: usize, out: &mut WorkerOut| {
        for &i in &cond.members[c] {
                let func = functions[i];
                let name = func.name();
                if !should_analyze(name) {
                    continue;
                }
                if let (Some(cache), Some(key)) = (cache_ro, keys[i]) {
                    let probe = {
                        let mut span =
                            rid_obs::span(rid_obs::SpanKind::CacheLookup, name);
                        let probe = cache.probe(name, key);
                        span.set_value(u64::from(matches!(probe.0, CacheProbe::Hit)));
                        probe
                    };
                    match probe {
                        (CacheProbe::Hit, Some(entry)) => {
                            let published = slots[i].set(entry.summary);
                            debug_assert!(published.is_ok());
                            out.stats.functions_analyzed += 1;
                            out.stats.cache_hits += 1;
                            out.reports.extend(entry.reports);
                            continue;
                        }
                        (CacheProbe::Hit, None) => unreachable!("hits carry the entry"),
                        (CacheProbe::Stale, _) => out.stats.cache_invalidated += 1,
                        (CacheProbe::Absent, _) => out.stats.cache_misses += 1,
                    }
                }
                let view = SummaryView::Slots { predefined, graph: &graph, slots: &slots };
                let callees = callee_names(&graph, i);
                let fuel = effective_fuel(&options.budget, faults, name);
                let meter = BudgetMeter::start(&options.budget, global_deadline);
                let first = guarded_attempt(
                    func,
                    view,
                    &options.limits,
                    options.sat,
                    &meter,
                    fuel,
                    faults,
                    0,
                    options.exec_mode,
                );
                let first_ms = meter.elapsed().as_millis() as u64;
                match first {
                    Ok((outcome, ipp)) => record_success(
                        out, i, name, &outcome, ipp, None, first_ms, keys[i], &slots,
                        &callees,
                    ),
                    Err(()) => {
                        // Immediate retry with reduced limits; a second
                        // panic degrades to the default summary — the
                        // same §5.2 fallback as a cap hit — so the
                        // component always completes and callers above
                        // always find a summary.
                        let meter = BudgetMeter::start(&options.budget, global_deadline);
                        let retry = guarded_attempt(
                            func,
                            view,
                            &reduced_limits(&options.limits),
                            options.sat,
                            &meter,
                            fuel,
                            faults,
                            1,
                            options.exec_mode,
                        );
                        let wall_ms = first_ms + meter.elapsed().as_millis() as u64;
                        match retry {
                            Ok((outcome, ipp)) => record_success(
                                out,
                                i,
                                name,
                                &outcome,
                                ipp,
                                Some(DegradeReason::Retried),
                                wall_ms,
                                keys[i],
                                &slots,
                                &callees,
                            ),
                            Err(()) => {
                                let published = slots[i].set(Summary::default_for(name));
                                debug_assert!(published.is_ok());
                                out.stats.functions_analyzed += 1;
                                out.stats.functions_partial += 1;
                                let cost = FunctionCost { paths: 0, states: 0, wall_ms };
                                crate::budget::trace_degradation(name, DegradeReason::Panic);
                                out.degraded.push((
                                    name.to_owned(),
                                    Degradation { reason: DegradeReason::Panic, cost },
                                ));
                            }
                        }
                    }
                }
        }
    };

    let mut queue_depth_max = 0;
    let outputs: Vec<WorkerOut> = if active_total == 0 {
        Vec::new()
    } else if workers == 1 {
        // Sequential fast path: component indices ascend in reverse
        // topological order, so a plain ascending scan satisfies every
        // dependency without counters, deques, or the scheduler gate.
        let mut out = WorkerOut::default();
        for (c, &is_active) in active.iter().enumerate() {
            if is_active {
                process_comp(c, &mut out);
            }
        }
        vec![out]
    } else {
        // Dependency counters over *active* callee components only; the
        // worker that completes a component's last callee is the one
        // that schedules it (counter hits 0).
        let remaining: Vec<AtomicUsize> = (0..n_comps)
            .map(|c| {
                AtomicUsize::new(
                    cond.callee_comps[c].iter().filter(|&&cw| active[cw]).count(),
                )
            })
            .collect();
        let sched = Scheduler::new(workers, active_total);
        {
            // Seed: leaf components (no active callees), round-robin so
            // every worker starts with work.
            let mut next = 0;
            for c in 0..n_comps {
                if active[c] && remaining[c].load(Ordering::Relaxed) == 0 {
                    sched.queued.fetch_add(1, Ordering::Relaxed);
                    sched.deques[next % workers].lock().push_back(c);
                    next += 1;
                }
            }
            sched.depth_max.fetch_max(next, Ordering::Relaxed);
        }
        let run_worker = |w: usize| -> WorkerOut {
            let mut out = WorkerOut::default();
            loop {
                let Some((c, stolen)) = sched.pop(w) else {
                    if sched.wait() {
                        continue;
                    }
                    break;
                };
                out.stats.steals += usize::from(stolen);
                process_comp(c, &mut out);
                for &cw in &cond.caller_comps[c] {
                    if active[cw] && remaining[cw].fetch_sub(1, Ordering::SeqCst) == 1 {
                        sched.push(w, cw);
                    }
                }
                sched.finish_one();
            }
            // Scoped threads can unblock the spawner before this thread's
            // TLS destructors run, so flush the trace ring explicitly.
            rid_obs::trace::flush_thread();
            out
        };
        let run_worker = &run_worker;
        let outputs = std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..workers).map(|w| scope.spawn(move || run_worker(w))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker does not panic"))
                .collect()
        });
        queue_depth_max = sched.depth_max.load(Ordering::Relaxed);
        outputs
    };

    // Merge per-worker results (order-insensitive: reports are re-sorted,
    // degradations keyed by name, stats additive) and write fresh results
    // back to the cache.
    let mut stats = AnalysisStats::default();
    let mut reports = Vec::new();
    let mut degraded = BTreeMap::new();
    for out in outputs {
        stats.absorb(&out.stats);
        reports.extend(out.reports);
        degraded.extend(out.degraded);
        if let Some(cache) = cache.as_deref_mut() {
            for (i, key, summary, entry_reports) in out.fresh {
                cache.insert(functions[i].name(), key, summary, entry_reports);
            }
        }
    }

    let mut db = predefined.clone();
    for slot in slots {
        if let Some(summary) = slot.into_inner() {
            db.insert(summary);
        }
    }

    // Callback-contract extension (§7 future work): re-check registered
    // callbacks ignoring return-value distinctions.
    if options.check_callbacks {
        let model = crate::callbacks::CallbackModel::linux_default();
        let callbacks = crate::callbacks::collect_callbacks(program, &model);
        let existing: std::collections::HashSet<(String, String)> = reports
            .iter()
            .map(|r| (r.function.clone(), r.refcount.to_string()))
            .collect();
        for name in callbacks {
            let Some(func) = program.function(&name) else { continue };
            // The callback re-check gets the same panic isolation as the
            // main pass: a blow-up skips this callback (recorded as a
            // degradation unless the function already has one) instead of
            // aborting the run.
            let found = catch_unwind(AssertUnwindSafe(|| {
                crate::callbacks::check_callback_function(
                    func,
                    &db,
                    &options.limits,
                    options.sat,
                )
            }));
            let Ok(found) = found else {
                if !degraded.contains_key(&name) {
                    crate::budget::trace_degradation(&name, DegradeReason::Panic);
                    degraded.insert(
                        name.clone(),
                        Degradation {
                            reason: DegradeReason::Panic,
                            cost: FunctionCost::default(),
                        },
                    );
                }
                continue;
            };
            for report in found {
                if !existing.contains(&(report.function.clone(), report.refcount.to_string()))
                {
                    reports.push(report);
                }
            }
        }
    }

    stats.functions_total = functions.len();
    stats.counts = classification.counts();
    stats.queue_depth_max = queue_depth_max;
    stats.classify_time = classify_time;
    stats.analyze_time = analyze_start.elapsed();

    reports.sort_by(|a, b| {
        (&a.function, &a.refcount, a.path_a, a.path_b).cmp(&(
            &b.function,
            &b.refcount,
            b.path_a,
            b.path_b,
        ))
    });

    AnalysisResult { reports, summaries: db, classification, stats, degraded }
}

/// Records a successful attempt into the worker's local output: summary
/// publication, statistics, reports, the cache write-back staging, and —
/// when a budget/cap was hit or the attempt was a retry — a degradation
/// entry.
#[allow(clippy::too_many_arguments)]
fn record_success(
    out: &mut WorkerOut,
    idx: usize,
    name: &str,
    outcome: &SummarizeOutcome,
    mut ipp: IppOutcome,
    forced: Option<DegradeReason>,
    wall_ms: u64,
    key: Option<u128>,
    slots: &[OnceLock<Summary>],
    callees: &[String],
) {
    // Complete the explainability record before anything is staged: the
    // cache write-back below clones the reports, so warm runs replay the
    // exact same provenance a cold run produced.
    for report in &mut ipp.reports {
        if let Some(p) = report.provenance.as_mut() {
            p.callees = callees.to_vec();
        }
    }
    let summary = build_summary(name, &outcome.path_entries, &ipp, outcome.partial);
    out.stats.record_outcome(outcome);
    let degrade = forced.or(outcome.degrade);
    if let (Some(key), None) = (key, degrade) {
        // Only clean results are cached; degraded summaries depend on
        // budgets and retry limits, which are not key material.
        out.fresh.push((idx, key, summary.clone(), ipp.reports.clone()));
    }
    out.reports.extend(ipp.reports);
    let published = slots[idx].set(summary);
    debug_assert!(published.is_ok(), "each function is summarized exactly once");
    if let Some(reason) = degrade {
        let cost = FunctionCost {
            paths: outcome.paths_enumerated,
            states: outcome.states_explored,
            wall_ms,
        };
        crate::budget::trace_degradation(name, reason);
        out.degraded.push((name.to_owned(), Degradation { reason, cost }));
    }
}

/// Deterministic, deduplicated callee-name list for function `i`:
/// resolved call-graph edges plus unresolved externals. This is the
/// "callee summaries used" line of `rid explain`.
pub(crate) fn callee_names(graph: &CallGraph, i: usize) -> Vec<String> {
    let mut names: Vec<String> = graph
        .callees(i)
        .iter()
        .map(|&j| graph.name(j).to_owned())
        .chain(graph.unknown_callees(i).iter().cloned())
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Convenience: analyze RIL sources directly.
///
/// # Errors
///
/// Returns the frontend error when a source fails to parse or link.
pub fn analyze_sources<'a>(
    sources: impl IntoIterator<Item = &'a str>,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
) -> Result<AnalysisResult, rid_frontend::FrontendError> {
    let program = rid_frontend::parse_program(sources)?;
    Ok(analyze_program(&program, predefined, options))
}

/// Groups reports by function, preserving report order.
#[must_use]
pub fn reports_by_function(reports: &[IppReport]) -> HashMap<&str, Vec<&IppReport>> {
    let mut map: HashMap<&str, Vec<&IppReport>> = HashMap::new();
    for report in reports {
        map.entry(report.function.as_str()).or_default().push(report);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::linux_dpm_apis;

    const FIGURE8: &str = r#"module radeon;
        extern fn pm_runtime_get_sync;
        extern fn pm_runtime_put_autosuspend;
        fn radeon_crtc_set_config(dev, set) {
            let ret = pm_runtime_get_sync(dev);
            if (ret < 0) { return ret; }
            ret = drm_crtc_helper_set_config(set);
            pm_runtime_put_autosuspend(dev);
            return ret;
        }"#;

    #[test]
    fn figure8_bug_is_detected() {
        let result =
            analyze_sources([FIGURE8], &linux_dpm_apis(), &AnalysisOptions::default())
                .unwrap();
        assert_eq!(result.reports.len(), 1);
        let r = &result.reports[0];
        assert_eq!(r.function, "radeon_crtc_set_config");
        // The early-error path leaves +1; the normal path balances to 0.
        assert_eq!((r.change_a.max(r.change_b), r.change_a.min(r.change_b)), (1, 0));
    }

    const FIGURE9: &str = r#"module usb;
        extern fn pm_runtime_get_sync;
        extern fn pm_runtime_put_sync;
        fn usb_autopm_get_interface(intf) {
            let status = pm_runtime_get_sync(intf.dev);
            if (status < 0) {
                pm_runtime_put_sync(intf.dev);
            }
            if (status > 0) {
                status = 0;
            }
            return status;
        }
        fn usb_autopm_put_interface(intf) {
            pm_runtime_put_sync(intf.dev);
            return;
        }
        fn idmouse_open(inode, file) {
            let interface = inode.intf;
            let result = usb_autopm_get_interface(interface);
            if (result) { goto error; }
            result = idmouse_create_image(inode);
            if (result) { goto error; }
            usb_autopm_put_interface(interface);
        error:
            return result;
        }"#;

    #[test]
    fn figure9_wrapper_is_summarized_precisely_and_bug_found() {
        let result =
            analyze_sources([FIGURE9], &linux_dpm_apis(), &AnalysisOptions::default())
                .unwrap();
        // The wrapper itself is consistent (error paths are distinguished
        // by the return value) — no report on it.
        assert!(result.reports.iter().all(|r| r.function != "usb_autopm_get_interface"));
        // Its summary captures both behaviours.
        let wrapper = result.summaries.get("usb_autopm_get_interface").unwrap();
        assert!(wrapper.entries.iter().any(|e| e.has_changes()));
        assert!(wrapper.entries.iter().any(|e| !e.has_changes()));
        // idmouse_open misses the put when idmouse_create_image fails.
        let bugs: Vec<_> =
            result.reports.iter().filter(|r| r.function == "idmouse_open").collect();
        assert!(!bugs.is_empty(), "missing idmouse_open report: {:?}", result.reports);
    }

    #[test]
    fn figure10_false_negative_is_reproduced() {
        // arizona_irq_thread is internally consistent (IRQ_NONE vs
        // IRQ_HANDLED distinguish the paths); the bug is only visible at
        // callers through a function pointer RID does not model (§6.4).
        let src = r#"module arizona;
            extern fn pm_runtime_get_sync;
            extern fn pm_runtime_put;
            fn arizona_irq_thread(irq, data) {
                let ret = pm_runtime_get_sync(data.dev);
                if (ret < 0) {
                    dev_err(data);
                    return 0; // IRQ_NONE
                }
                handle(data);
                pm_runtime_put(data.dev);
                return 1; // IRQ_HANDLED
            }"#;
        let result =
            analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        assert!(result.reports.is_empty(), "Figure 10 must be a false negative");
    }

    #[test]
    fn selective_skips_unrelated_functions() {
        let src = r#"module m;
            fn unrelated_helper(x) { let v = random; return v; }
            fn logging() { return; }
            fn driver(dev) { pm_runtime_get(dev); pm_runtime_put(dev); return; }"#;
        let result =
            analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        assert_eq!(result.stats.functions_total, 3);
        assert_eq!(result.stats.functions_analyzed, 1); // only `driver`
        assert!(result.summaries.get("logging").is_none());
    }

    #[test]
    fn non_selective_analyzes_everything() {
        let src = "module m; fn a() { return 1; } fn b() { return 2; }";
        let options = AnalysisOptions { selective: false, ..Default::default() };
        let result = analyze_sources([src], &linux_dpm_apis(), &options).unwrap();
        assert_eq!(result.stats.functions_analyzed, 2);
    }

    #[test]
    fn parallel_equals_sequential() {
        let sources = [FIGURE8, FIGURE9];
        let sequential =
            analyze_sources(sources, &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        let options = AnalysisOptions { threads: 4, ..Default::default() };
        let parallel = analyze_sources(sources, &linux_dpm_apis(), &options).unwrap();
        assert_eq!(sequential.reports, parallel.reports);
        assert_eq!(
            sequential.stats.functions_analyzed,
            parallel.stats.functions_analyzed
        );
    }

    #[test]
    fn recursive_functions_get_default_breaking() {
        let src = r#"module m;
            fn even(n, dev) { pm_runtime_get(dev); odd(n, dev); return; }
            fn odd(n, dev) { pm_runtime_put(dev); even(n, dev); return; }"#;
        // Must terminate and produce summaries for both.
        let result =
            analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        assert!(result.summaries.get("even").is_some());
        assert!(result.summaries.get("odd").is_some());
    }

    #[test]
    fn exec_mode_counts_cover_analyzed_functions() {
        let result =
            analyze_sources([FIGURE8, FIGURE9], &linux_dpm_apis(), &AnalysisOptions::default())
                .unwrap();
        assert_eq!(
            result.stats.exec_tree + result.stats.exec_per_path,
            result.stats.functions_analyzed,
            "every executed function resolves to exactly one concrete mode"
        );
    }

    #[test]
    fn warm_cache_run_is_identical_and_all_hits() {
        let sources = [FIGURE8, FIGURE9];
        let apis = linux_dpm_apis();
        let options = AnalysisOptions::default();
        let program = rid_frontend::parse_program(sources).unwrap();
        let mut cache = SummaryCache::new();
        let cold = analyze_program_cached(
            &program,
            &apis,
            &options,
            &FaultPlan::none(),
            Some(&mut cache),
        );
        assert_eq!(cold.stats.cache_hits, 0);
        assert_eq!(cold.stats.cache_misses, cold.stats.functions_analyzed);
        let warm = analyze_program_cached(
            &program,
            &apis,
            &options,
            &FaultPlan::none(),
            Some(&mut cache),
        );
        assert_eq!(warm.stats.cache_hits, warm.stats.functions_analyzed);
        assert_eq!(warm.stats.cache_misses + warm.stats.cache_invalidated, 0);
        assert_eq!(warm.reports, cold.reports);
        assert_eq!(
            serde_json::to_string(&warm.summaries).unwrap(),
            serde_json::to_string(&cold.summaries).unwrap()
        );
    }

    #[test]
    fn reports_by_function_groups() {
        let result =
            analyze_sources([FIGURE8], &linux_dpm_apis(), &AnalysisOptions::default())
                .unwrap();
        let grouped = reports_by_function(&result.reports);
        assert_eq!(grouped.len(), 1);
        assert!(grouped.contains_key("radeon_crtc_set_config"));
    }
}
