//! Whole-program analysis driver (§5.2–5.3 of the paper).
//!
//! The driver classifies functions (selective analysis), walks the call
//! graph bottom-up, summarizes each analyzed function, runs IPP checking
//! on its path summaries, and accumulates reports.
//!
//! Parallelism (§5.3) is **dependency-driven**: the SCC condensation of
//! the call graph is built once, every component carries a counter of its
//! unfinished callee components, and a persistent pool of workers (spawned
//! once per analysis, not once per level) pops ready components from
//! per-worker deques, stealing from siblings when idle. A component
//! becomes schedulable the instant its last callee finishes — no level
//! barrier, so one slow function stalls only its own transitive callers,
//! never the whole wave. Completed summaries are published into lock-free
//! per-function slots; the counters guarantee every slot a caller reads is
//! already set, so the read path takes no lock at all. Recursion is broken
//! by processing each SCC as one sequential work unit in function-index
//! order, with calls to not-yet-summarized members falling back to the
//! default summary — deterministic at every thread count.
//!
//! The driver is *fault tolerant*: each function is summarized inside a
//! `catch_unwind` envelope, so a panic poisons only that function, never
//! a worker or the run. A panicked function gets one immediate retry with
//! reduced limits; if that fails too it degrades to the default summary —
//! exactly the §5.2 fallback for cap hits — and the incident is recorded
//! in [`AnalysisResult::degraded`]. Degraded functions still publish a
//! summary and unblock their callers' counters, so the schedule always
//! drains. Wall-clock and solver-fuel budgets ([`Budget`]) degrade the
//! same way, cooperatively (no thread is ever killed).
//!
//! A persistent [`SummaryCache`] (see [`crate::cache`]) can be threaded
//! through [`analyze_program_cached`]: functions whose content key is
//! unchanged skip summarization and checking entirely, making warm
//! re-runs of an unchanged corpus jump straight to the answer.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rid_ir::{Function, Program};
use rid_solver::SatOptions;
use serde::{Deserialize, Serialize};

use crate::budget::{Budget, BudgetMeter, Degradation, DegradeReason, FunctionCost};
use crate::cache::{cache_salt, function_keys, CacheProbe, SummaryCache};
use crate::callgraph::CallGraph;
use crate::classify::{classify, CategoryCounts, Classification};
use crate::exec::{summarize_paths_view, ExecMode, SummarizeOutcome, SummaryView};
use crate::fault::FaultPlan;
use crate::ipp::{build_summary, check_ipps, IppOutcome, IppReport};
use crate::paths::PathLimits;
use crate::summary::{Summary, SummaryDb};

/// Options controlling a whole-program analysis.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisOptions {
    /// Path/subcase/entry limits (§5.2, §6.1).
    pub limits: PathLimits,
    /// Constraint-solver options.
    pub sat: SatOptions,
    /// Enable the §5.2 selective analysis (classify first, skip category-3
    /// functions). When disabled every function is analyzed.
    pub selective: bool,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Enable the callback-contract extension (the paper's §7 future
    /// work): registered callbacks are re-checked with return-value
    /// distinctions removed, catching the Figure 10 class. Uses
    /// [`crate::callbacks::CallbackModel::linux_default`].
    pub check_callbacks: bool,
    /// Wall-clock / solver-fuel budgets; unlimited by default.
    pub budget: Budget,
    /// Execution strategy for summarization: adaptive per-function choice
    /// (default), shared-prefix tree execution, or the standalone per-path
    /// reference mode. All produce identical summaries.
    pub exec_mode: ExecMode,
    /// Upper bound on how many ready components a worker drains from a
    /// victim's deque per steal (`0` = auto: steal half the victim's
    /// queue, capped at [`AUTO_STEAL_CAP`]). Execution-order only — like
    /// `threads`, deliberately **not** cache-key material (see
    /// [`crate::cache`]).
    pub steal_batch: usize,
    /// Run the second-stage refutation pass ([`crate::refute`]) over the
    /// surviving reports (on by default; `--no-refute` disables it). Like
    /// `check_callbacks`, this is a post-merge coordinator pass: shard
    /// workers never run it, and it is **not** cache-key material — the
    /// cache stores stage-one reports and warm runs re-refute.
    pub refute: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            limits: PathLimits::default(),
            sat: SatOptions::default(),
            selective: true,
            threads: 1,
            check_callbacks: false,
            budget: Budget::unlimited(),
            exec_mode: ExecMode::default(),
            steal_batch: 0,
            refute: true,
        }
    }
}

/// Batch cap used when [`AnalysisOptions::steal_batch`] is `0` (auto):
/// steal-half, but never more than this. Half the victim's queue balances
/// load in O(log n) steals; the cap keeps one steal from hoarding a whole
/// wavefront behind a single worker when the queue is momentarily deep.
pub const AUTO_STEAL_CAP: usize = 8;

/// Statistics from one analysis run (§6.5-style reporting).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Total functions in the program.
    pub functions_total: usize,
    /// Functions symbolically analyzed (cache hits included).
    pub functions_analyzed: usize,
    /// Structural paths enumerated across all functions.
    pub paths_enumerated: usize,
    /// Symbolic states explored (feasible forks).
    pub states_explored: usize,
    /// Functions whose analysis hit a limit (partial summaries).
    pub functions_partial: usize,
    /// Table-1 census (zeroed when selective analysis is off).
    pub counts: CategoryCounts,
    /// Satisfiability queries issued by the executors.
    pub sat_queries: usize,
    /// Of those, answered from the conjunction-keyed memo cache.
    pub sat_memo_hits: usize,
    /// Basic blocks executed symbolically.
    pub blocks_executed: usize,
    /// Blocks skipped thanks to shared-prefix tree execution (an upper
    /// bound; 0 in per-path mode).
    pub blocks_saved: usize,
    /// Functions executed in tree mode (after [`ExecMode::Auto`]
    /// resolution; cache hits execute nothing and count in neither).
    #[serde(default)]
    pub exec_tree: usize,
    /// Functions executed in per-path mode (after [`ExecMode::Auto`]
    /// resolution).
    #[serde(default)]
    pub exec_per_path: usize,
    /// Functions answered from the persistent summary cache.
    #[serde(default)]
    pub cache_hits: usize,
    /// Functions absent from the cache (computed fresh).
    #[serde(default)]
    pub cache_misses: usize,
    /// Functions present in the cache under a stale key (their content
    /// cone changed; recomputed).
    #[serde(default)]
    pub cache_invalidated: usize,
    /// Satisfiability queries answered "satisfiable".
    #[serde(default)]
    pub sat_sat: usize,
    /// Satisfiability queries answered "unsatisfiable".
    #[serde(default)]
    pub sat_unsat: usize,
    /// Incremental-solver snapshots taken at fork points (tree mode).
    #[serde(default)]
    pub solver_snapshots: usize,
    /// Largest literal depth among snapshotted solvers.
    #[serde(default)]
    pub snapshot_depth_max: usize,
    /// Components a worker obtained by stealing from a sibling's deque
    /// (0 in sequential runs).
    #[serde(default)]
    pub steals: usize,
    /// High-water mark of ready components queued across all deques
    /// (0 in sequential runs).
    #[serde(default)]
    pub queue_depth_max: usize,
    /// Per-worker scheduler profiles (steal batch sizes, scan lengths,
    /// idle waits); empty in sequential runs. Merges by concatenation, so
    /// a multi-run absorb keeps every worker's record.
    #[serde(default)]
    pub worker_profiles: Vec<WorkerProfile>,
    /// Reports the second-stage refutation pass judged still-satisfiable
    /// under the exact check (kept with positive evidence).
    #[serde(default)]
    pub reports_confirmed: usize,
    /// Reports the refutation pass proved spurious and dropped.
    #[serde(default)]
    pub reports_refuted: usize,
    /// Reports the refutation pass could not decide (fuel exhausted or no
    /// provenance); kept — exhaustion never refutes.
    #[serde(default)]
    pub reports_inconclusive: usize,
    /// Wall-clock time spent classifying.
    pub classify_time: Duration,
    /// Wall-clock time spent summarizing + IPP checking.
    pub analyze_time: Duration,
}

impl AnalysisStats {
    /// Folds another stats record into this one: additive fields sum,
    /// high-water marks take the max. This is the *single* merge path —
    /// the parallel driver, incremental re-analysis, and per-module
    /// analysis all route through it, so a counter added to the struct
    /// cannot be silently dropped by one of the merge sites again.
    pub fn absorb(&mut self, other: &AnalysisStats) {
        self.functions_total += other.functions_total;
        self.functions_analyzed += other.functions_analyzed;
        self.paths_enumerated += other.paths_enumerated;
        self.states_explored += other.states_explored;
        self.functions_partial += other.functions_partial;
        self.counts.refcount_changing += other.counts.refcount_changing;
        self.counts.affecting_analyzed += other.counts.affecting_analyzed;
        self.counts.affecting_skipped += other.counts.affecting_skipped;
        self.counts.other += other.counts.other;
        self.sat_queries += other.sat_queries;
        self.sat_memo_hits += other.sat_memo_hits;
        self.blocks_executed += other.blocks_executed;
        self.blocks_saved += other.blocks_saved;
        self.exec_tree += other.exec_tree;
        self.exec_per_path += other.exec_per_path;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_invalidated += other.cache_invalidated;
        self.sat_sat += other.sat_sat;
        self.sat_unsat += other.sat_unsat;
        self.solver_snapshots += other.solver_snapshots;
        self.snapshot_depth_max = self.snapshot_depth_max.max(other.snapshot_depth_max);
        self.steals += other.steals;
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        self.worker_profiles.extend(other.worker_profiles.iter().cloned());
        self.reports_confirmed += other.reports_confirmed;
        self.reports_refuted += other.reports_refuted;
        self.reports_inconclusive += other.reports_inconclusive;
        self.classify_time += other.classify_time;
        self.analyze_time += other.analyze_time;
    }

    /// Tallies one function's [`SummarizeOutcome`] — the single place
    /// executor counters flow into run statistics (the driver, the
    /// incremental re-analyzer, and any future caller share it).
    pub(crate) fn record_outcome(&mut self, outcome: &SummarizeOutcome) {
        self.functions_analyzed += 1;
        self.paths_enumerated += outcome.paths_enumerated;
        self.states_explored += outcome.states_explored;
        self.functions_partial += usize::from(outcome.partial);
        self.sat_queries += outcome.sat_queries;
        self.sat_memo_hits += outcome.sat_memo_hits;
        self.sat_sat += outcome.sat_sat;
        self.sat_unsat += outcome.sat_unsat;
        self.solver_snapshots += outcome.solver_snapshots;
        self.snapshot_depth_max = self.snapshot_depth_max.max(outcome.snapshot_depth_max);
        self.blocks_executed += outcome.blocks_executed;
        self.blocks_saved += outcome.blocks_saved;
        match outcome.mode_used {
            ExecMode::Tree => self.exec_tree += 1,
            ExecMode::PerPath => self.exec_per_path += 1,
            ExecMode::Auto => debug_assert!(false, "Auto resolves before execution"),
        }
    }
}

/// A serializable snapshot of an [`rid_obs::Histogram`] (log₂ buckets as
/// parallel `lower_bound` / `count` arrays). Lives here rather than in
/// rid-obs so the obs crate stays dependency-free; [`to_histogram`]
/// re-enters the registry via [`rid_obs::Histogram::from_parts`].
///
/// [`to_histogram`]: HistogramSnapshot::to_histogram
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Lower bounds of the non-empty log₂ buckets.
    #[serde(default)]
    pub bucket_lo: Vec<u64>,
    /// Sample counts of those buckets (same order as `bucket_lo`).
    #[serde(default)]
    pub bucket_n: Vec<u64>,
}

impl HistogramSnapshot {
    /// Snapshot a live histogram.
    #[must_use]
    pub fn of(h: &rid_obs::Histogram) -> HistogramSnapshot {
        let (bucket_lo, bucket_n) = h.sparse_buckets().into_iter().unzip();
        HistogramSnapshot { count: h.count, sum: h.sum, min: h.min, max: h.max, bucket_lo, bucket_n }
    }

    /// Rebuild the histogram (exact up to log₂-bucket resolution).
    #[must_use]
    pub fn to_histogram(&self) -> rid_obs::Histogram {
        let buckets: Vec<(u64, u64)> =
            self.bucket_lo.iter().copied().zip(self.bucket_n.iter().copied()).collect();
        rid_obs::Histogram::from_parts(self.count, self.sum, self.min, self.max, &buckets)
    }
}

/// One worker's scheduler profile: what it executed, what it stole, and
/// how long it idled. Recorded by the work-stealing pool (empty for the
/// sequential fast path) and surfaced as `sched.w<i>.*` registry
/// histograms plus the `rid-bench profile` per-worker table.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkerProfile {
    /// Worker index (0-based).
    pub worker: usize,
    /// Components this worker executed.
    pub comps: u64,
    /// Successful steals (each drains one batch from a victim).
    pub steals: u64,
    /// Full victim scans that found nothing (the worker then parks).
    pub scan_misses: u64,
    /// Batch size per successful steal.
    pub steal_batch: HistogramSnapshot,
    /// Victims probed per successful steal (1 = immediate neighbor).
    pub steal_scan: HistogramSnapshot,
    /// Nanoseconds spent parked per idle wait.
    pub idle_wait_ns: HistogramSnapshot,
}

/// The result of analyzing a program.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// All IPP bug reports, sorted by function name then refcount.
    pub reports: Vec<IppReport>,
    /// Computed summaries (plus the predefined ones).
    pub summaries: SummaryDb,
    /// The classification used (empty when selective analysis is off).
    pub classification: Classification,
    /// Run statistics.
    pub stats: AnalysisStats,
    /// Per-function degradation records: why a function fell back toward
    /// the default summary and what its analysis cost. Sorted by name.
    pub degraded: BTreeMap<String, Degradation>,
}

/// Halves every structural limit (floor 1) for the post-panic retry, so
/// the retry is cheaper and more likely to dodge whatever blew up.
pub(crate) fn reduced_limits(limits: &PathLimits) -> PathLimits {
    PathLimits {
        max_paths: (limits.max_paths / 2).max(1),
        max_block_visits: limits.max_block_visits,
        max_subcases: (limits.max_subcases / 2).max(1),
        max_entries: (limits.max_entries / 2).max(1),
    }
}

/// One guarded summarization attempt: fault injection, summarization, and
/// IPP checking inside a `catch_unwind` envelope. `Err(())` means the
/// attempt panicked (the payload is dropped; the panic hook has already
/// printed it). The shared state we touch is a read-only summary view
/// plus value-typed options, so unwinding cannot leave it inconsistent —
/// hence the `AssertUnwindSafe`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn guarded_attempt(
    func: &Function,
    db: SummaryView<'_>,
    limits: &PathLimits,
    sat: SatOptions,
    meter: &BudgetMeter,
    fuel: Option<u64>,
    faults: &FaultPlan,
    attempt: u32,
    mode: ExecMode,
) -> Result<(SummarizeOutcome, IppOutcome), ()> {
    catch_unwind(AssertUnwindSafe(|| {
        faults.inject(func.name(), attempt);
        let outcome = {
            let mut span = rid_obs::span(rid_obs::SpanKind::Exec, func.name());
            let outcome = summarize_paths_view(func, db, limits, sat, meter, fuel, mode);
            span.set_value(outcome.path_entries.len() as u64);
            outcome
        };
        let ipp = check_ipps(func.name(), &outcome.path_entries, sat);
        (outcome, ipp)
    }))
    .map_err(|_| ())
}

/// Effective solver fuel for `name`: the configured budget, or zero when
/// the fault plan stalls this function's solver.
pub(crate) fn effective_fuel(budget: &Budget, faults: &FaultPlan, name: &str) -> Option<u64> {
    if faults.should_stall(name) {
        Some(0)
    } else {
        budget.solver_fuel
    }
}

/// Analyzes a whole program.
///
/// `predefined` supplies refcount API specifications (§5.1); they shadow
/// same-named definitions. See [`AnalysisOptions`] for knobs.
#[must_use]
pub fn analyze_program(
    program: &Program,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
) -> AnalysisResult {
    analyze_program_cached(program, predefined, options, &FaultPlan::none(), None)
}

/// Like [`analyze_program`], but with a [`FaultPlan`] injecting
/// deterministic panics, slowdowns, and solver stalls — the robustness
/// test harness. Production callers use [`analyze_program`], which passes
/// [`FaultPlan::none`].
#[must_use]
pub fn analyze_program_with_faults(
    program: &Program,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
    faults: &FaultPlan,
) -> AnalysisResult {
    analyze_program_cached(program, predefined, options, faults, None)
}

/// Everything one worker accumulates locally; merged (in worker-index
/// order) after the pool drains, so the hot path never touches a shared
/// lock for bookkeeping.
#[derive(Default)]
struct WorkerOut {
    stats: AnalysisStats,
    reports: Vec<IppReport>,
    degraded: Vec<(String, Degradation)>,
    /// Fresh, non-degraded results to write back to the cache:
    /// `(function index, key, summary, its reports)`.
    fresh: Vec<(usize, u128, Summary, Vec<IppReport>)>,
}

/// The work-stealing core: per-worker deques of ready components, a
/// count of unfinished components, and a gate for idle workers.
///
/// Invariants (see DESIGN.md §10): a component is pushed exactly once —
/// by the worker that completes its *last* unfinished callee (the
/// `remaining` counter's fetch-sub observes 1) or at seed time for leaf
/// components; `pending` counts scheduled-but-unfinished components and
/// is the sole termination signal; `queued` is a hint that lets an idle
/// worker distinguish "all work in flight" from "work available but
/// momentarily missed", closing the sleep/notify race.
struct Scheduler {
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Components seeded or unlocked but not yet finished.
    pending: AtomicUsize,
    /// Components currently sitting in some deque.
    queued: AtomicUsize,
    /// High-water mark of `queued` (observability only).
    depth_max: AtomicUsize,
    gate: Mutex<()>,
    idle: Condvar,
    /// Resolved steal-batch cap ([`AnalysisOptions::steal_batch`], with
    /// `0` mapped to the steal-half / [`AUTO_STEAL_CAP`] heuristic).
    steal_cap: usize,
}

/// What `Scheduler::pop` found: a component plus, when it was stolen, the
/// steal's shape (for the per-worker profile).
struct Popped {
    comp: usize,
    stolen: Option<StealGrab>,
}

/// Shape of one successful steal.
struct StealGrab {
    /// Components drained from the victim (1 executed now, the rest moved
    /// onto the thief's own deque).
    batch: usize,
    /// Victims probed before one had work (1 = immediate neighbor).
    scanned: usize,
}

impl Scheduler {
    fn new(workers: usize, pending: usize, steal_batch: usize) -> Scheduler {
        Scheduler {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(pending),
            queued: AtomicUsize::new(0),
            depth_max: AtomicUsize::new(0),
            gate: Mutex::new(()),
            idle: Condvar::new(),
            steal_cap: if steal_batch == 0 { AUTO_STEAL_CAP } else { steal_batch },
        }
    }

    /// Makes `comp` ready on `worker`'s deque and wakes one sleeper. The
    /// `queued` increment happens before the push, and the gate is cycled
    /// before notifying: any worker that checked `queued` too early is
    /// either still outside the gate (and will re-check) or already
    /// registered on the condvar (and will be woken).
    ///
    /// Ordering: `Relaxed` suffices for the counter itself. `queued` is
    /// only *decided on* inside the gate (`wait`), and the gate cycle
    /// below forms a happens-before edge with any waiter that acquires the
    /// gate after us — which makes the relaxed store visible there. A
    /// waiter that acquired the gate *before* this cycle may read the old
    /// count, but then it is already registered on the condvar and the
    /// `notify_one` (or the 10 ms insurance timeout) wakes it to re-check.
    fn push(&self, worker: usize, comp: usize) {
        let depth = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_max.fetch_max(depth, Ordering::Relaxed);
        self.deques[worker].lock().push_back(comp);
        drop(self.gate.lock());
        self.idle.notify_one();
    }

    /// Pops from `worker`'s own deque (LIFO: freshly unlocked components
    /// are cache-warm) or steals a *batch* from a sibling: half the
    /// victim's queue up to `steal_cap`, FIFO end (the entries the victim
    /// would touch last). One stolen component is returned for immediate
    /// execution; the rest land on the thief's own deque — still counted
    /// in `queued`, and stealable in turn — so each paid scan amortizes
    /// over several components instead of one.
    ///
    /// Tracing: a successful steal records a `steal` span whose value is
    /// the batch size; a fruitless full sweep records a `scan` span with
    /// value 0, so failed scans are distinguishable from steals (and from
    /// genuine idle parking) in traces.
    fn pop(&self, worker: usize) -> Option<Popped> {
        if let Some(c) = self.deques[worker].lock().pop_back() {
            // Relaxed: see `push` — the count is only decided on under
            // the gate, whose lock cycle publishes this store.
            self.queued.fetch_sub(1, Ordering::Relaxed);
            return Some(Popped { comp: c, stolen: None });
        }
        let n = self.deques.len();
        let mut span = rid_obs::span(rid_obs::SpanKind::Steal, "scan");
        let mut grabbed: Vec<usize> = Vec::new();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            {
                let mut vq = self.deques[victim].lock();
                let take = vq.len().div_ceil(2).clamp(1, self.steal_cap);
                for _ in 0..take {
                    match vq.pop_front() {
                        Some(c) => grabbed.push(c),
                        None => break,
                    }
                }
            }
            if grabbed.is_empty() {
                continue;
            }
            // Only the component executed now leaves the ready count; the
            // re-queued remainder stays visible to sleeping workers.
            self.queued.fetch_sub(1, Ordering::Relaxed);
            if grabbed.len() > 1 {
                let mut own = self.deques[worker].lock();
                for &c in &grabbed[1..] {
                    own.push_back(c);
                }
            }
            span.set_name("steal");
            span.set_value(grabbed.len() as u64);
            return Some(Popped {
                comp: grabbed[0],
                stolen: Some(StealGrab { batch: grabbed.len(), scanned: offset }),
            });
        }
        span.set_value(0);
        None
    }

    /// Marks one component finished; wakes everyone when it was the last
    /// so idle workers can exit. `AcqRel`: the release half publishes this
    /// worker's writes to whoever observes the count hit zero, and the
    /// acquire half makes the observer of the *final* decrement see every
    /// earlier worker's writes — the termination edge `wait` pairs with.
    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            drop(self.gate.lock());
            self.idle.notify_all();
        }
    }

    /// Parks `worker` until work might be available or the run is over.
    /// Returns `false` when the run is complete.
    fn wait(&self) -> bool {
        // Acquire: pairs with the release half of `finish_one`'s final
        // decrement, so a worker exiting on `pending == 0` sees every
        // finished component's effects.
        if self.pending.load(Ordering::Acquire) == 0 {
            return false;
        }
        let guard = self.gate.lock();
        if self.pending.load(Ordering::Acquire) == 0 {
            return false;
        }
        if self.queued.load(Ordering::Relaxed) > 0 {
            return true; // missed work: retry immediately
        }
        // The timeout is insurance only; the push/finish protocol above
        // guarantees a wakeup.
        let _guard = self.idle.wait_for(guard, Duration::from_millis(10));
        true
    }
}

/// Analyzes a whole program with an optional persistent summary cache
/// and a fault plan.
///
/// This is the full-control entry point [`analyze_program`] and
/// [`analyze_program_with_faults`] delegate to. When `cache` is given,
/// functions whose content key matches a cached entry reuse the stored
/// summary and reports (counted in [`AnalysisStats::cache_hits`]), and
/// every fresh non-degraded result is written back. Degraded results are
/// never cached — that is what makes the cache sound under budgets and
/// fault plans (see [`crate::cache`]).
#[must_use]
pub fn analyze_program_cached(
    program: &Program,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
    faults: &FaultPlan,
    cache: Option<&mut SummaryCache>,
) -> AnalysisResult {
    analyze_program_masked(program, predefined, options, faults, cache, None)
}

/// A per-component shard mask for multi-process analysis (see
/// [`crate::shard`]). `analyze` marks the components this process runs at
/// all (its assigned components plus their active callee closure, so
/// every summary a worker reads is either cached or recomputed locally);
/// `emit` marks the subset this process *owns* — only their reports,
/// degradations, statistics, and cache write-backs leave the process.
/// Closure-only components still publish summaries into the slots, but
/// their outputs are discarded: the owning shard already reported them.
pub(crate) struct CompMask {
    /// Indexed by component: process this component.
    pub analyze: Vec<bool>,
    /// Indexed by component: own this component's outputs.
    pub emit: Vec<bool>,
}

/// [`analyze_program_cached`] with an optional [`CompMask`] restricting
/// which call-graph components this process analyzes and which outputs it
/// owns. `None` analyzes (and owns) everything.
pub(crate) fn analyze_program_masked(
    program: &Program,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
    faults: &FaultPlan,
    mut cache: Option<&mut SummaryCache>,
    mask: Option<&CompMask>,
) -> AnalysisResult {
    let graph = CallGraph::build(program);
    let functions = program.functions();

    let classify_start = Instant::now();
    let classification = if options.selective {
        classify(program, &graph, predefined)
    } else {
        Classification::default()
    };
    let classify_time = classify_start.elapsed();

    let should_analyze = |name: &str| -> bool {
        if predefined.contains(name) {
            return false; // predefined summaries shadow bodies (§5.1)
        }
        if !options.selective {
            return true;
        }
        classification.category(name).is_analyzed()
    };

    let analyze_start = Instant::now();
    let global_deadline = options.budget.global_deadline.map(|d| analyze_start + d);

    // Dependency structure: one node per SCC, counters over *active*
    // callee components only (inactive components publish nothing, so
    // nobody needs to wait for them).
    let cond = graph.condensation();
    let n_comps = cond.members.len();
    let mut active: Vec<bool> = cond
        .members
        .iter()
        .map(|members| members.iter().any(|&i| should_analyze(functions[i].name())))
        .collect();
    if let Some(mask) = mask {
        debug_assert_eq!(mask.analyze.len(), n_comps);
        for (a, &m) in active.iter_mut().zip(&mask.analyze) {
            *a = *a && m;
        }
    }
    let owns = |c: usize| mask.is_none_or(|m| m.emit[c]);
    let keys: Vec<Option<u128>> = if cache.is_some() {
        let salt = cache_salt(options, predefined);
        function_keys(&functions, &cond, &active, salt)
    } else {
        vec![None; functions.len()]
    };

    let active_total = active.iter().filter(|&&a| a).count();
    let workers = options.threads.max(1).min(active_total.max(1));

    // Lock-free summary publication: dependency counting guarantees every
    // slot a caller reads is set before the caller is scheduled.
    let slots: Vec<OnceLock<Summary>> = (0..functions.len()).map(|_| OnceLock::new()).collect();
    let cache_ro: Option<&SummaryCache> = cache.as_deref();

    // One SCC is one work unit: members in index order, so calls to
    // not-yet-summarized members deterministically fall back to the
    // default summary regardless of thread count.
    let process_comp = |c: usize, out: &mut WorkerOut| {
        for &i in &cond.members[c] {
                let func = functions[i];
                let name = func.name();
                if !should_analyze(name) {
                    continue;
                }
                if let (Some(cache), Some(key)) = (cache_ro, keys[i]) {
                    let probe = {
                        let mut span =
                            rid_obs::span(rid_obs::SpanKind::CacheLookup, name);
                        let probe = cache.probe(name, key);
                        span.set_value(u64::from(matches!(probe.0, CacheProbe::Hit)));
                        probe
                    };
                    match probe {
                        (CacheProbe::Hit, Some(entry)) => {
                            let published = slots[i].set(entry.summary);
                            debug_assert!(published.is_ok());
                            out.stats.functions_analyzed += 1;
                            out.stats.cache_hits += 1;
                            out.reports.extend(entry.reports);
                            continue;
                        }
                        (CacheProbe::Hit, None) => unreachable!("hits carry the entry"),
                        (CacheProbe::Stale, _) => out.stats.cache_invalidated += 1,
                        (CacheProbe::Absent, _) => out.stats.cache_misses += 1,
                    }
                }
                let view = SummaryView::Slots { predefined, graph: &graph, slots: &slots };
                let callees = callee_names(&graph, i);
                let fuel = effective_fuel(&options.budget, faults, name);
                let meter = BudgetMeter::start(&options.budget, global_deadline);
                let first = guarded_attempt(
                    func,
                    view,
                    &options.limits,
                    options.sat,
                    &meter,
                    fuel,
                    faults,
                    0,
                    options.exec_mode,
                );
                let first_ms = meter.elapsed().as_millis() as u64;
                match first {
                    Ok((outcome, ipp)) => record_success(
                        out, i, name, &outcome, ipp, None, first_ms, keys[i], &slots,
                        &callees,
                    ),
                    Err(()) => {
                        // Immediate retry with reduced limits; a second
                        // panic degrades to the default summary — the
                        // same §5.2 fallback as a cap hit — so the
                        // component always completes and callers above
                        // always find a summary.
                        let meter = BudgetMeter::start(&options.budget, global_deadline);
                        let retry = guarded_attempt(
                            func,
                            view,
                            &reduced_limits(&options.limits),
                            options.sat,
                            &meter,
                            fuel,
                            faults,
                            1,
                            options.exec_mode,
                        );
                        let wall_ms = first_ms + meter.elapsed().as_millis() as u64;
                        match retry {
                            Ok((outcome, ipp)) => record_success(
                                out,
                                i,
                                name,
                                &outcome,
                                ipp,
                                Some(DegradeReason::Retried),
                                wall_ms,
                                keys[i],
                                &slots,
                                &callees,
                            ),
                            Err(()) => {
                                let published = slots[i].set(Summary::default_for(name));
                                debug_assert!(published.is_ok());
                                out.stats.functions_analyzed += 1;
                                out.stats.functions_partial += 1;
                                let cost = FunctionCost { paths: 0, states: 0, wall_ms };
                                crate::budget::trace_degradation(name, DegradeReason::Panic);
                                out.degraded.push((
                                    name.to_owned(),
                                    Degradation { reason: DegradeReason::Panic, cost },
                                ));
                            }
                        }
                    }
                }
        }
    };

    let mut queue_depth_max = 0;
    let outputs: Vec<WorkerOut> = if active_total == 0 {
        Vec::new()
    } else if workers == 1 {
        // Sequential fast path: component indices ascend in reverse
        // topological order, so a plain ascending scan satisfies every
        // dependency without counters, deques, or the scheduler gate.
        let mut out = WorkerOut::default();
        for (c, &is_active) in active.iter().enumerate() {
            if is_active {
                if owns(c) {
                    process_comp(c, &mut out);
                } else {
                    // Closure-only component under a shard mask: publish
                    // summaries (into `slots`) but discard the outputs —
                    // the owning shard already accounted for them.
                    process_comp(c, &mut WorkerOut::default());
                }
            }
        }
        vec![out]
    } else {
        // Dependency counters over *active* callee components only; the
        // worker that completes a component's last callee is the one
        // that schedules it (counter hits 0).
        let remaining: Vec<AtomicUsize> = (0..n_comps)
            .map(|c| {
                AtomicUsize::new(
                    cond.callee_comps[c].iter().filter(|&&cw| active[cw]).count(),
                )
            })
            .collect();
        let sched = Scheduler::new(workers, active_total, options.steal_batch);
        {
            // Seed: leaf components (no active callees), round-robin so
            // every worker starts with work.
            let mut next = 0;
            for c in 0..n_comps {
                if active[c] && remaining[c].load(Ordering::Relaxed) == 0 {
                    sched.queued.fetch_add(1, Ordering::Relaxed);
                    sched.deques[next % workers].lock().push_back(c);
                    next += 1;
                }
            }
            sched.depth_max.fetch_max(next, Ordering::Relaxed);
        }
        let run_worker = |w: usize| -> WorkerOut {
            let mut out = WorkerOut::default();
            let mut profile = WorkerProfile { worker: w, ..WorkerProfile::default() };
            let mut steal_batch = rid_obs::Histogram::default();
            let mut steal_scan = rid_obs::Histogram::default();
            let mut idle_wait_ns = rid_obs::Histogram::default();
            loop {
                let Some(popped) = sched.pop(w) else {
                    profile.scan_misses += 1;
                    let parked = Instant::now();
                    let more = sched.wait();
                    idle_wait_ns.record(parked.elapsed().as_nanos() as u64);
                    if more {
                        continue;
                    }
                    break;
                };
                if let Some(grab) = &popped.stolen {
                    out.stats.steals += 1;
                    profile.steals += 1;
                    steal_batch.record(grab.batch as u64);
                    steal_scan.record(grab.scanned as u64);
                }
                profile.comps += 1;
                let c = popped.comp;
                if owns(c) {
                    process_comp(c, &mut out);
                } else {
                    // See the sequential path: summaries publish, outputs
                    // are the owning shard's to report.
                    process_comp(c, &mut WorkerOut::default());
                }
                for &cw in &cond.caller_comps[c] {
                    // AcqRel: the release half publishes this worker's slot
                    // writes to the thief that schedules `cw`; the acquire
                    // half on the 1→0 decrement makes every callee's
                    // publication visible before `cw` runs. (The `OnceLock`
                    // slots synchronize on their own too — this keeps the
                    // counter protocol self-sufficient.)
                    if active[cw] && remaining[cw].fetch_sub(1, Ordering::AcqRel) == 1 {
                        sched.push(w, cw);
                    }
                }
                sched.finish_one();
            }
            profile.steal_batch = HistogramSnapshot::of(&steal_batch);
            profile.steal_scan = HistogramSnapshot::of(&steal_scan);
            profile.idle_wait_ns = HistogramSnapshot::of(&idle_wait_ns);
            out.stats.worker_profiles.push(profile);
            // Scoped threads can unblock the spawner before this thread's
            // TLS destructors run, so flush the trace ring explicitly.
            rid_obs::trace::flush_thread();
            out
        };
        let run_worker = &run_worker;
        let outputs = std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..workers).map(|w| scope.spawn(move || run_worker(w))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker does not panic"))
                .collect()
        });
        queue_depth_max = sched.depth_max.load(Ordering::Relaxed);
        outputs
    };

    // Merge per-worker results (order-insensitive: reports are re-sorted,
    // degradations keyed by name, stats additive) and write fresh results
    // back to the cache.
    let mut stats = AnalysisStats::default();
    let mut reports = Vec::new();
    let mut degraded = BTreeMap::new();
    for out in outputs {
        stats.absorb(&out.stats);
        reports.extend(out.reports);
        degraded.extend(out.degraded);
        if let Some(cache) = cache.as_deref_mut() {
            for (i, key, summary, entry_reports) in out.fresh {
                cache.insert(functions[i].name(), key, summary, entry_reports);
            }
        }
    }

    let mut db = predefined.clone();
    for slot in slots {
        if let Some(summary) = slot.into_inner() {
            db.insert(summary);
        }
    }

    // Callback-contract extension (§7 future work): re-check registered
    // callbacks ignoring return-value distinctions.
    if options.check_callbacks {
        callback_pass(program, &db, options, &mut reports, &mut degraded);
    }

    // Second-stage refutation: re-validate each surviving report's joint
    // constraints exactly. Runs after cache write-back (above), so cached
    // reports are stage-one reports and warm runs re-refute identically.
    if options.refute {
        crate::refute::refute_pass(&db, options.budget.solver_fuel, &mut reports, &mut stats);
    }

    stats.functions_total = functions.len();
    stats.counts = classification.counts();
    stats.queue_depth_max = queue_depth_max;
    stats.classify_time = classify_time;
    stats.analyze_time = analyze_start.elapsed();

    reports.sort_by(|a, b| {
        (&a.function, &a.refcount, a.path_a, a.path_b).cmp(&(
            &b.function,
            &b.refcount,
            b.path_a,
            b.path_b,
        ))
    });

    AnalysisResult { reports, summaries: db, classification, stats, degraded }
}

/// The callback-contract pass: re-checks registered callbacks with
/// return-value distinctions removed, appending any report not already
/// present for the same `(function, refcount)`. Runs after the summary
/// database is complete — the driver calls it inline, and the
/// multi-process coordinator ([`crate::shard`]) calls it once over the
/// merged result (shard workers skip it, so it is never run twice).
pub(crate) fn callback_pass(
    program: &Program,
    db: &SummaryDb,
    options: &AnalysisOptions,
    reports: &mut Vec<IppReport>,
    degraded: &mut BTreeMap<String, Degradation>,
) {
    let model = crate::callbacks::CallbackModel::linux_default();
    let callbacks = crate::callbacks::collect_callbacks(program, &model);
    let existing: std::collections::HashSet<(String, String)> =
        reports.iter().map(|r| (r.function.clone(), r.refcount.to_string())).collect();
    for name in callbacks {
        let Some(func) = program.function(&name) else { continue };
        // The callback re-check gets the same panic isolation as the
        // main pass: a blow-up skips this callback (recorded as a
        // degradation unless the function already has one) instead of
        // aborting the run.
        let found = catch_unwind(AssertUnwindSafe(|| {
            crate::callbacks::check_callback_function(func, db, &options.limits, options.sat)
        }));
        let Ok(found) = found else {
            if !degraded.contains_key(&name) {
                crate::budget::trace_degradation(&name, DegradeReason::Panic);
                degraded.insert(
                    name.clone(),
                    Degradation { reason: DegradeReason::Panic, cost: FunctionCost::default() },
                );
            }
            continue;
        };
        for report in found {
            if !existing.contains(&(report.function.clone(), report.refcount.to_string())) {
                reports.push(report);
            }
        }
    }
}

/// Records a successful attempt into the worker's local output: summary
/// publication, statistics, reports, the cache write-back staging, and —
/// when a budget/cap was hit or the attempt was a retry — a degradation
/// entry.
#[allow(clippy::too_many_arguments)]
fn record_success(
    out: &mut WorkerOut,
    idx: usize,
    name: &str,
    outcome: &SummarizeOutcome,
    mut ipp: IppOutcome,
    forced: Option<DegradeReason>,
    wall_ms: u64,
    key: Option<u128>,
    slots: &[OnceLock<Summary>],
    callees: &[String],
) {
    // Complete the explainability record before anything is staged: the
    // cache write-back below clones the reports, so warm runs replay the
    // exact same provenance a cold run produced.
    for report in &mut ipp.reports {
        if let Some(p) = report.provenance.as_mut() {
            p.callees = callees.to_vec();
        }
    }
    let summary = build_summary(name, &outcome.path_entries, &ipp, outcome.partial);
    out.stats.record_outcome(outcome);
    let degrade = forced.or(outcome.degrade);
    if let (Some(key), None) = (key, degrade) {
        // Only clean results are cached; degraded summaries depend on
        // budgets and retry limits, which are not key material.
        out.fresh.push((idx, key, summary.clone(), ipp.reports.clone()));
    }
    out.reports.extend(ipp.reports);
    let published = slots[idx].set(summary);
    debug_assert!(published.is_ok(), "each function is summarized exactly once");
    if let Some(reason) = degrade {
        let cost = FunctionCost {
            paths: outcome.paths_enumerated,
            states: outcome.states_explored,
            wall_ms,
        };
        crate::budget::trace_degradation(name, reason);
        out.degraded.push((name.to_owned(), Degradation { reason, cost }));
    }
}

/// Deterministic, deduplicated callee-name list for function `i`:
/// resolved call-graph edges plus unresolved externals. This is the
/// "callee summaries used" line of `rid explain`.
pub(crate) fn callee_names(graph: &CallGraph, i: usize) -> Vec<String> {
    let mut names: Vec<String> = graph
        .callees(i)
        .iter()
        .map(|&j| graph.name(j).to_owned())
        .chain(graph.unknown_callees(i).iter().cloned())
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Convenience: analyze RIL sources directly.
///
/// # Errors
///
/// Returns the frontend error when a source fails to parse or link.
pub fn analyze_sources<'a>(
    sources: impl IntoIterator<Item = &'a str>,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
) -> Result<AnalysisResult, rid_frontend::FrontendError> {
    let program = rid_frontend::parse_program(sources)?;
    Ok(analyze_program(&program, predefined, options))
}

/// Groups reports by function, preserving report order.
#[must_use]
pub fn reports_by_function(reports: &[IppReport]) -> HashMap<&str, Vec<&IppReport>> {
    let mut map: HashMap<&str, Vec<&IppReport>> = HashMap::new();
    for report in reports {
        map.entry(report.function.as_str()).or_default().push(report);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::linux_dpm_apis;

    const FIGURE8: &str = r#"module radeon;
        extern fn pm_runtime_get_sync;
        extern fn pm_runtime_put_autosuspend;
        fn radeon_crtc_set_config(dev, set) {
            let ret = pm_runtime_get_sync(dev);
            if (ret < 0) { return ret; }
            ret = drm_crtc_helper_set_config(set);
            pm_runtime_put_autosuspend(dev);
            return ret;
        }"#;

    #[test]
    fn figure8_bug_is_detected() {
        let result =
            analyze_sources([FIGURE8], &linux_dpm_apis(), &AnalysisOptions::default())
                .unwrap();
        assert_eq!(result.reports.len(), 1);
        let r = &result.reports[0];
        assert_eq!(r.function, "radeon_crtc_set_config");
        // The early-error path leaves +1; the normal path balances to 0.
        assert_eq!((r.change_a.max(r.change_b), r.change_a.min(r.change_b)), (1, 0));
    }

    const FIGURE9: &str = r#"module usb;
        extern fn pm_runtime_get_sync;
        extern fn pm_runtime_put_sync;
        fn usb_autopm_get_interface(intf) {
            let status = pm_runtime_get_sync(intf.dev);
            if (status < 0) {
                pm_runtime_put_sync(intf.dev);
            }
            if (status > 0) {
                status = 0;
            }
            return status;
        }
        fn usb_autopm_put_interface(intf) {
            pm_runtime_put_sync(intf.dev);
            return;
        }
        fn idmouse_open(inode, file) {
            let interface = inode.intf;
            let result = usb_autopm_get_interface(interface);
            if (result) { goto error; }
            result = idmouse_create_image(inode);
            if (result) { goto error; }
            usb_autopm_put_interface(interface);
        error:
            return result;
        }"#;

    #[test]
    fn figure9_wrapper_is_summarized_precisely_and_bug_found() {
        let result =
            analyze_sources([FIGURE9], &linux_dpm_apis(), &AnalysisOptions::default())
                .unwrap();
        // The wrapper itself is consistent (error paths are distinguished
        // by the return value) — no report on it.
        assert!(result.reports.iter().all(|r| r.function != "usb_autopm_get_interface"));
        // Its summary captures both behaviours.
        let wrapper = result.summaries.get("usb_autopm_get_interface").unwrap();
        assert!(wrapper.entries.iter().any(|e| e.has_changes()));
        assert!(wrapper.entries.iter().any(|e| !e.has_changes()));
        // idmouse_open misses the put when idmouse_create_image fails.
        let bugs: Vec<_> =
            result.reports.iter().filter(|r| r.function == "idmouse_open").collect();
        assert!(!bugs.is_empty(), "missing idmouse_open report: {:?}", result.reports);
    }

    #[test]
    fn figure10_false_negative_is_reproduced() {
        // arizona_irq_thread is internally consistent (IRQ_NONE vs
        // IRQ_HANDLED distinguish the paths); the bug is only visible at
        // callers through a function pointer RID does not model (§6.4).
        let src = r#"module arizona;
            extern fn pm_runtime_get_sync;
            extern fn pm_runtime_put;
            fn arizona_irq_thread(irq, data) {
                let ret = pm_runtime_get_sync(data.dev);
                if (ret < 0) {
                    dev_err(data);
                    return 0; // IRQ_NONE
                }
                handle(data);
                pm_runtime_put(data.dev);
                return 1; // IRQ_HANDLED
            }"#;
        let result =
            analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        assert!(result.reports.is_empty(), "Figure 10 must be a false negative");
    }

    #[test]
    fn selective_skips_unrelated_functions() {
        let src = r#"module m;
            fn unrelated_helper(x) { let v = random; return v; }
            fn logging() { return; }
            fn driver(dev) { pm_runtime_get(dev); pm_runtime_put(dev); return; }"#;
        let result =
            analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        assert_eq!(result.stats.functions_total, 3);
        assert_eq!(result.stats.functions_analyzed, 1); // only `driver`
        assert!(result.summaries.get("logging").is_none());
    }

    #[test]
    fn non_selective_analyzes_everything() {
        let src = "module m; fn a() { return 1; } fn b() { return 2; }";
        let options = AnalysisOptions { selective: false, ..Default::default() };
        let result = analyze_sources([src], &linux_dpm_apis(), &options).unwrap();
        assert_eq!(result.stats.functions_analyzed, 2);
    }

    #[test]
    fn parallel_equals_sequential() {
        let sources = [FIGURE8, FIGURE9];
        let sequential =
            analyze_sources(sources, &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        let options = AnalysisOptions { threads: 4, ..Default::default() };
        let parallel = analyze_sources(sources, &linux_dpm_apis(), &options).unwrap();
        assert_eq!(sequential.reports, parallel.reports);
        assert_eq!(
            sequential.stats.functions_analyzed,
            parallel.stats.functions_analyzed
        );
    }

    #[test]
    fn steal_batch_settings_do_not_change_results() {
        // The batch cap reshuffles execution order only; summaries and
        // reports must be byte-identical at every setting, including the
        // degenerate single-component-per-steal cap.
        let sources = [FIGURE8, FIGURE9];
        let reference =
            analyze_sources(sources, &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        for steal_batch in [0usize, 1, 3, 64] {
            let options =
                AnalysisOptions { threads: 4, steal_batch, ..Default::default() };
            let got = analyze_sources(sources, &linux_dpm_apis(), &options).unwrap();
            assert_eq!(reference.reports, got.reports, "steal_batch {steal_batch}");
            assert_eq!(
                reference.stats.functions_analyzed, got.stats.functions_analyzed,
                "steal_batch {steal_batch}"
            );
        }
    }

    #[test]
    fn parallel_runs_record_per_worker_profiles() {
        let sources = [FIGURE8, FIGURE9];
        let options = AnalysisOptions { threads: 3, ..Default::default() };
        let result = analyze_sources(sources, &linux_dpm_apis(), &options).unwrap();
        // One profile per spawned worker, in worker-index order, each
        // accounting its executed components; together they cover every
        // scheduled component exactly once.
        let profiles = &result.stats.worker_profiles;
        assert!(!profiles.is_empty());
        let workers: Vec<usize> = profiles.iter().map(|p| p.worker).collect();
        let mut sorted = workers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(workers, sorted, "one profile per worker, merged in order");
        let comps: u64 = profiles.iter().map(|p| p.comps).sum();
        assert!(comps > 0);
        let steals: u64 = profiles.iter().map(|p| p.steals).sum();
        assert_eq!(steals as usize, result.stats.steals);
        for p in profiles {
            assert_eq!(p.steal_batch.count, p.steals, "one batch sample per steal");
            if p.steals > 0 {
                assert!(p.steal_batch.min >= 1);
            }
        }
        // Sequential runs carry no profiles.
        let seq =
            analyze_sources(sources, &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        assert!(seq.stats.worker_profiles.is_empty());
    }

    #[test]
    fn recursive_functions_get_default_breaking() {
        let src = r#"module m;
            fn even(n, dev) { pm_runtime_get(dev); odd(n, dev); return; }
            fn odd(n, dev) { pm_runtime_put(dev); even(n, dev); return; }"#;
        // Must terminate and produce summaries for both.
        let result =
            analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        assert!(result.summaries.get("even").is_some());
        assert!(result.summaries.get("odd").is_some());
    }

    #[test]
    fn exec_mode_counts_cover_analyzed_functions() {
        let result =
            analyze_sources([FIGURE8, FIGURE9], &linux_dpm_apis(), &AnalysisOptions::default())
                .unwrap();
        assert_eq!(
            result.stats.exec_tree + result.stats.exec_per_path,
            result.stats.functions_analyzed,
            "every executed function resolves to exactly one concrete mode"
        );
    }

    #[test]
    fn warm_cache_run_is_identical_and_all_hits() {
        let sources = [FIGURE8, FIGURE9];
        let apis = linux_dpm_apis();
        let options = AnalysisOptions::default();
        let program = rid_frontend::parse_program(sources).unwrap();
        let mut cache = SummaryCache::new();
        let cold = analyze_program_cached(
            &program,
            &apis,
            &options,
            &FaultPlan::none(),
            Some(&mut cache),
        );
        assert_eq!(cold.stats.cache_hits, 0);
        assert_eq!(cold.stats.cache_misses, cold.stats.functions_analyzed);
        let warm = analyze_program_cached(
            &program,
            &apis,
            &options,
            &FaultPlan::none(),
            Some(&mut cache),
        );
        assert_eq!(warm.stats.cache_hits, warm.stats.functions_analyzed);
        assert_eq!(warm.stats.cache_misses + warm.stats.cache_invalidated, 0);
        assert_eq!(warm.reports, cold.reports);
        assert_eq!(
            serde_json::to_string(&warm.summaries).unwrap(),
            serde_json::to_string(&cold.summaries).unwrap()
        );
    }

    #[test]
    fn reports_by_function_groups() {
        let result =
            analyze_sources([FIGURE8], &linux_dpm_apis(), &AnalysisOptions::default())
                .unwrap();
        let grouped = reports_by_function(&result.reports);
        assert_eq!(grouped.len(), 1);
        assert!(grouped.contains_key("radeon_crtc_set_config"));
    }
}
