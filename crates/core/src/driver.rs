//! Whole-program analysis driver (§5.2–5.3 of the paper).
//!
//! The driver classifies functions (selective analysis), walks the call
//! graph bottom-up, summarizes each analyzed function, runs IPP checking
//! on its path summaries, and accumulates reports. Independent strongly
//! connected components at the same dependency level can be analyzed in
//! parallel (§5.3); recursion is broken by giving intra-SCC calls the
//! default summary, deterministically in both modes.
//!
//! The driver is *fault tolerant*: each function is summarized inside a
//! `catch_unwind` envelope, so a panic poisons only that function, never
//! a worker or the run. A panicked function gets one sequential retry
//! with reduced limits; if that fails too it degrades to the default
//! summary — exactly the §5.2 fallback for cap hits — and the incident is
//! recorded in [`AnalysisResult::degraded`]. Wall-clock and solver-fuel
//! budgets ([`Budget`]) degrade the same way, cooperatively (no thread is
//! ever killed).

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use rid_ir::{Function, Program};
use rid_solver::SatOptions;
use serde::{Deserialize, Serialize};

use crate::budget::{Budget, BudgetMeter, Degradation, DegradeReason, FunctionCost};
use crate::callgraph::CallGraph;
use crate::classify::{classify, CategoryCounts, Classification};
use crate::exec::{summarize_paths_mode, ExecMode, SummarizeOutcome};
use crate::fault::FaultPlan;
use crate::ipp::{build_summary, check_ipps, IppOutcome, IppReport};
use crate::paths::PathLimits;
use crate::summary::{Summary, SummaryDb};

/// Options controlling a whole-program analysis.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisOptions {
    /// Path/subcase/entry limits (§5.2, §6.1).
    pub limits: PathLimits,
    /// Constraint-solver options.
    pub sat: SatOptions,
    /// Enable the §5.2 selective analysis (classify first, skip category-3
    /// functions). When disabled every function is analyzed.
    pub selective: bool,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Enable the callback-contract extension (the paper's §7 future
    /// work): registered callbacks are re-checked with return-value
    /// distinctions removed, catching the Figure 10 class. Uses
    /// [`crate::callbacks::CallbackModel::linux_default`].
    pub check_callbacks: bool,
    /// Wall-clock / solver-fuel budgets; unlimited by default.
    pub budget: Budget,
    /// Execution strategy for summarization: shared-prefix tree execution
    /// with incremental solving (default), or the standalone per-path
    /// reference mode. Both produce identical summaries.
    pub exec_mode: ExecMode,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            limits: PathLimits::default(),
            sat: SatOptions::default(),
            selective: true,
            threads: 1,
            check_callbacks: false,
            budget: Budget::unlimited(),
            exec_mode: ExecMode::default(),
        }
    }
}

/// Statistics from one analysis run (§6.5-style reporting).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Total functions in the program.
    pub functions_total: usize,
    /// Functions symbolically analyzed.
    pub functions_analyzed: usize,
    /// Structural paths enumerated across all functions.
    pub paths_enumerated: usize,
    /// Symbolic states explored (feasible forks).
    pub states_explored: usize,
    /// Functions whose analysis hit a limit (partial summaries).
    pub functions_partial: usize,
    /// Table-1 census (zeroed when selective analysis is off).
    pub counts: CategoryCounts,
    /// Satisfiability queries issued by the executors.
    pub sat_queries: usize,
    /// Of those, answered from the conjunction-keyed memo cache.
    pub sat_memo_hits: usize,
    /// Basic blocks executed symbolically.
    pub blocks_executed: usize,
    /// Blocks skipped thanks to shared-prefix tree execution (an upper
    /// bound; 0 in per-path mode).
    pub blocks_saved: usize,
    /// Wall-clock time spent classifying.
    pub classify_time: Duration,
    /// Wall-clock time spent summarizing + IPP checking.
    pub analyze_time: Duration,
}

/// The result of analyzing a program.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// All IPP bug reports, sorted by function name then refcount.
    pub reports: Vec<IppReport>,
    /// Computed summaries (plus the predefined ones).
    pub summaries: SummaryDb,
    /// The classification used (empty when selective analysis is off).
    pub classification: Classification,
    /// Run statistics.
    pub stats: AnalysisStats,
    /// Per-function degradation records: why a function fell back toward
    /// the default summary and what its analysis cost. Sorted by name.
    pub degraded: BTreeMap<String, Degradation>,
}

/// Halves every structural limit (floor 1) for the post-panic retry, so
/// the retry is cheaper and more likely to dodge whatever blew up.
pub(crate) fn reduced_limits(limits: &PathLimits) -> PathLimits {
    PathLimits {
        max_paths: (limits.max_paths / 2).max(1),
        max_block_visits: limits.max_block_visits,
        max_subcases: (limits.max_subcases / 2).max(1),
        max_entries: (limits.max_entries / 2).max(1),
    }
}

/// One guarded summarization attempt: fault injection, summarization, and
/// IPP checking inside a `catch_unwind` envelope. `Err(())` means the
/// attempt panicked (the payload is dropped; the panic hook has already
/// printed it). The shared state we touch is a read-only DB snapshot plus
/// value-typed options, so unwinding cannot leave it inconsistent —
/// hence the `AssertUnwindSafe`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn guarded_attempt(
    func: &Function,
    db: &SummaryDb,
    limits: &PathLimits,
    sat: SatOptions,
    meter: &BudgetMeter,
    fuel: Option<u64>,
    faults: &FaultPlan,
    attempt: u32,
    mode: ExecMode,
) -> Result<(SummarizeOutcome, IppOutcome), ()> {
    catch_unwind(AssertUnwindSafe(|| {
        faults.inject(func.name(), attempt);
        let outcome = summarize_paths_mode(func, db, limits, sat, meter, fuel, mode);
        let ipp = check_ipps(func.name(), &outcome.path_entries, sat);
        (outcome, ipp)
    }))
    .map_err(|_| ())
}

/// Effective solver fuel for `name`: the configured budget, or zero when
/// the fault plan stalls this function's solver.
pub(crate) fn effective_fuel(budget: &Budget, faults: &FaultPlan, name: &str) -> Option<u64> {
    if faults.should_stall(name) {
        Some(0)
    } else {
        budget.solver_fuel
    }
}

/// Analyzes a whole program.
///
/// `predefined` supplies refcount API specifications (§5.1); they shadow
/// same-named definitions. See [`AnalysisOptions`] for knobs.
#[must_use]
pub fn analyze_program(
    program: &Program,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
) -> AnalysisResult {
    analyze_program_with_faults(program, predefined, options, &FaultPlan::none())
}

/// Like [`analyze_program`], but with a [`FaultPlan`] injecting
/// deterministic panics, slowdowns, and solver stalls — the robustness
/// test harness. Production callers use [`analyze_program`], which passes
/// [`FaultPlan::none`].
#[must_use]
pub fn analyze_program_with_faults(
    program: &Program,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
    faults: &FaultPlan,
) -> AnalysisResult {
    let graph = CallGraph::build(program);
    let functions = program.functions();

    let classify_start = Instant::now();
    let classification = if options.selective {
        classify(program, &graph, predefined)
    } else {
        Classification::default()
    };
    let classify_time = classify_start.elapsed();

    let should_analyze = |name: &str| -> bool {
        if predefined.contains(name) {
            return false; // predefined summaries shadow bodies (§5.1)
        }
        if !options.selective {
            return true;
        }
        classification.category(name).is_analyzed()
    };

    let analyze_start = Instant::now();
    let global_deadline = options.budget.global_deadline.map(|d| analyze_start + d);
    let db = RwLock::new(predefined.clone());
    let reports = Mutex::new(Vec::<IppReport>::new());
    let stats = Mutex::new(AnalysisStats::default());
    let degraded = Mutex::new(BTreeMap::<String, Degradation>::new());

    // Records a successful attempt: summary, stats, reports, and — when a
    // budget/cap was hit or the attempt was a retry — a degradation entry.
    let record = |name: &str,
                  outcome: &SummarizeOutcome,
                  ipp: IppOutcome,
                  forced: Option<DegradeReason>,
                  wall_ms: u64| {
        let summary = build_summary(name, &outcome.path_entries, &ipp, outcome.partial);
        {
            let mut stats = stats.lock();
            stats.functions_analyzed += 1;
            stats.paths_enumerated += outcome.paths_enumerated;
            stats.states_explored += outcome.states_explored;
            stats.functions_partial += usize::from(outcome.partial);
            stats.sat_queries += outcome.sat_queries;
            stats.sat_memo_hits += outcome.sat_memo_hits;
            stats.blocks_executed += outcome.blocks_executed;
            stats.blocks_saved += outcome.blocks_saved;
        }
        reports.lock().extend(ipp.reports);
        db.write().insert(summary);
        if let Some(reason) = forced.or(outcome.degrade) {
            let cost = FunctionCost {
                paths: outcome.paths_enumerated,
                states: outcome.states_explored,
                wall_ms,
            };
            degraded.lock().insert(name.to_owned(), Degradation { reason, cost });
        }
    };

    // Group function indices by dependency level; all callees of level k
    // live strictly below k (intra-SCC calls excepted — those are broken
    // by the default summary exactly like the paper breaks recursion).
    let levels = graph.levels();
    let max_level = levels.iter().copied().max().unwrap_or(0);
    let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    for (i, &level) in levels.iter().enumerate() {
        by_level[level].push(i);
    }

    let threads = options.threads.max(1);
    for level in &by_level {
        // First pass: every function in the level, possibly in parallel.
        // A panicked function lands in `failed` (with its first-attempt
        // cost) instead of tearing down the worker.
        let failed = Mutex::new(Vec::<(usize, u64)>::new());
        let work = |idx: usize| {
            let func = functions[idx];
            let name = func.name();
            if !should_analyze(name) {
                return;
            }
            let meter = BudgetMeter::start(&options.budget, global_deadline);
            let fuel = effective_fuel(&options.budget, faults, name);
            let attempt = {
                let snapshot = db.read();
                guarded_attempt(
                    func,
                    &snapshot,
                    &options.limits,
                    options.sat,
                    &meter,
                    fuel,
                    faults,
                    0,
                    options.exec_mode,
                )
            };
            let wall_ms = meter.elapsed().as_millis() as u64;
            match attempt {
                Ok((outcome, ipp)) => record(name, &outcome, ipp, None, wall_ms),
                Err(()) => failed.lock().push((idx, wall_ms)),
            }
        };

        if threads == 1 || level.len() == 1 {
            for &idx in level {
                work(idx);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads.min(level.len()) {
                    scope.spawn(|| loop {
                        let at = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&idx) = level.get(at) else { break };
                        work(idx);
                    });
                }
            });
        }

        // Retry pass: sequential, in deterministic (index) order, with
        // reduced limits. A second panic degrades the function to the
        // default summary — the same §5.2 fallback as a cap hit — so the
        // level always completes and callers above always find a summary.
        let mut failed = failed.into_inner();
        failed.sort_unstable();
        let retry_limits = reduced_limits(&options.limits);
        for (idx, first_ms) in failed {
            let func = functions[idx];
            let name = func.name();
            let meter = BudgetMeter::start(&options.budget, global_deadline);
            let fuel = effective_fuel(&options.budget, faults, name);
            let attempt = {
                let snapshot = db.read();
                guarded_attempt(
                    func,
                    &snapshot,
                    &retry_limits,
                    options.sat,
                    &meter,
                    fuel,
                    faults,
                    1,
                    options.exec_mode,
                )
            };
            let wall_ms = first_ms + meter.elapsed().as_millis() as u64;
            match attempt {
                Ok((outcome, ipp)) => {
                    record(name, &outcome, ipp, Some(DegradeReason::Retried), wall_ms);
                }
                Err(()) => {
                    db.write().insert(Summary::default_for(name));
                    {
                        let mut stats = stats.lock();
                        stats.functions_analyzed += 1;
                        stats.functions_partial += 1;
                    }
                    let cost = FunctionCost { paths: 0, states: 0, wall_ms };
                    degraded.lock().insert(
                        name.to_owned(),
                        Degradation { reason: DegradeReason::Panic, cost },
                    );
                }
            }
        }
    }

    // Callback-contract extension (§7 future work): re-check registered
    // callbacks ignoring return-value distinctions.
    if options.check_callbacks {
        let model = crate::callbacks::CallbackModel::linux_default();
        let callbacks = crate::callbacks::collect_callbacks(program, &model);
        let db = db.read();
        let existing: std::collections::HashSet<(String, String)> = reports
            .lock()
            .iter()
            .map(|r| (r.function.clone(), r.refcount.to_string()))
            .collect();
        for name in callbacks {
            let Some(func) = program.function(&name) else { continue };
            // The callback re-check gets the same panic isolation as the
            // main pass: a blow-up skips this callback (recorded as a
            // degradation unless the function already has one) instead of
            // aborting the run.
            let found = catch_unwind(AssertUnwindSafe(|| {
                crate::callbacks::check_callback_function(
                    func,
                    &db,
                    &options.limits,
                    options.sat,
                )
            }));
            let Ok(found) = found else {
                degraded.lock().entry(name.clone()).or_insert(Degradation {
                    reason: DegradeReason::Panic,
                    cost: FunctionCost::default(),
                });
                continue;
            };
            let mut reports = reports.lock();
            for report in found {
                if !existing.contains(&(report.function.clone(), report.refcount.to_string()))
                {
                    reports.push(report);
                }
            }
        }
    }

    let mut stats = stats.into_inner();
    stats.functions_total = functions.len();
    stats.counts = classification.counts();
    stats.classify_time = classify_time;
    stats.analyze_time = analyze_start.elapsed();

    let mut reports = reports.into_inner();
    reports.sort_by(|a, b| {
        (&a.function, &a.refcount, a.path_a, a.path_b).cmp(&(
            &b.function,
            &b.refcount,
            b.path_a,
            b.path_b,
        ))
    });

    AnalysisResult {
        reports,
        summaries: db.into_inner(),
        classification,
        stats,
        degraded: degraded.into_inner(),
    }
}

/// Convenience: analyze RIL sources directly.
///
/// # Errors
///
/// Returns the frontend error when a source fails to parse or link.
pub fn analyze_sources<'a>(
    sources: impl IntoIterator<Item = &'a str>,
    predefined: &SummaryDb,
    options: &AnalysisOptions,
) -> Result<AnalysisResult, rid_frontend::FrontendError> {
    let program = rid_frontend::parse_program(sources)?;
    Ok(analyze_program(&program, predefined, options))
}

/// Groups reports by function, preserving report order.
#[must_use]
pub fn reports_by_function(reports: &[IppReport]) -> HashMap<&str, Vec<&IppReport>> {
    let mut map: HashMap<&str, Vec<&IppReport>> = HashMap::new();
    for report in reports {
        map.entry(report.function.as_str()).or_default().push(report);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::linux_dpm_apis;

    const FIGURE8: &str = r#"module radeon;
        extern fn pm_runtime_get_sync;
        extern fn pm_runtime_put_autosuspend;
        fn radeon_crtc_set_config(dev, set) {
            let ret = pm_runtime_get_sync(dev);
            if (ret < 0) { return ret; }
            ret = drm_crtc_helper_set_config(set);
            pm_runtime_put_autosuspend(dev);
            return ret;
        }"#;

    #[test]
    fn figure8_bug_is_detected() {
        let result =
            analyze_sources([FIGURE8], &linux_dpm_apis(), &AnalysisOptions::default())
                .unwrap();
        assert_eq!(result.reports.len(), 1);
        let r = &result.reports[0];
        assert_eq!(r.function, "radeon_crtc_set_config");
        // The early-error path leaves +1; the normal path balances to 0.
        assert_eq!((r.change_a.max(r.change_b), r.change_a.min(r.change_b)), (1, 0));
    }

    const FIGURE9: &str = r#"module usb;
        extern fn pm_runtime_get_sync;
        extern fn pm_runtime_put_sync;
        fn usb_autopm_get_interface(intf) {
            let status = pm_runtime_get_sync(intf.dev);
            if (status < 0) {
                pm_runtime_put_sync(intf.dev);
            }
            if (status > 0) {
                status = 0;
            }
            return status;
        }
        fn usb_autopm_put_interface(intf) {
            pm_runtime_put_sync(intf.dev);
            return;
        }
        fn idmouse_open(inode, file) {
            let interface = inode.intf;
            let result = usb_autopm_get_interface(interface);
            if (result) { goto error; }
            result = idmouse_create_image(inode);
            if (result) { goto error; }
            usb_autopm_put_interface(interface);
        error:
            return result;
        }"#;

    #[test]
    fn figure9_wrapper_is_summarized_precisely_and_bug_found() {
        let result =
            analyze_sources([FIGURE9], &linux_dpm_apis(), &AnalysisOptions::default())
                .unwrap();
        // The wrapper itself is consistent (error paths are distinguished
        // by the return value) — no report on it.
        assert!(result.reports.iter().all(|r| r.function != "usb_autopm_get_interface"));
        // Its summary captures both behaviours.
        let wrapper = result.summaries.get("usb_autopm_get_interface").unwrap();
        assert!(wrapper.entries.iter().any(|e| e.has_changes()));
        assert!(wrapper.entries.iter().any(|e| !e.has_changes()));
        // idmouse_open misses the put when idmouse_create_image fails.
        let bugs: Vec<_> =
            result.reports.iter().filter(|r| r.function == "idmouse_open").collect();
        assert!(!bugs.is_empty(), "missing idmouse_open report: {:?}", result.reports);
    }

    #[test]
    fn figure10_false_negative_is_reproduced() {
        // arizona_irq_thread is internally consistent (IRQ_NONE vs
        // IRQ_HANDLED distinguish the paths); the bug is only visible at
        // callers through a function pointer RID does not model (§6.4).
        let src = r#"module arizona;
            extern fn pm_runtime_get_sync;
            extern fn pm_runtime_put;
            fn arizona_irq_thread(irq, data) {
                let ret = pm_runtime_get_sync(data.dev);
                if (ret < 0) {
                    dev_err(data);
                    return 0; // IRQ_NONE
                }
                handle(data);
                pm_runtime_put(data.dev);
                return 1; // IRQ_HANDLED
            }"#;
        let result =
            analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        assert!(result.reports.is_empty(), "Figure 10 must be a false negative");
    }

    #[test]
    fn selective_skips_unrelated_functions() {
        let src = r#"module m;
            fn unrelated_helper(x) { let v = random; return v; }
            fn logging() { return; }
            fn driver(dev) { pm_runtime_get(dev); pm_runtime_put(dev); return; }"#;
        let result =
            analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        assert_eq!(result.stats.functions_total, 3);
        assert_eq!(result.stats.functions_analyzed, 1); // only `driver`
        assert!(result.summaries.get("logging").is_none());
    }

    #[test]
    fn non_selective_analyzes_everything() {
        let src = "module m; fn a() { return 1; } fn b() { return 2; }";
        let options = AnalysisOptions { selective: false, ..Default::default() };
        let result = analyze_sources([src], &linux_dpm_apis(), &options).unwrap();
        assert_eq!(result.stats.functions_analyzed, 2);
    }

    #[test]
    fn parallel_equals_sequential() {
        let sources = [FIGURE8, FIGURE9];
        let sequential =
            analyze_sources(sources, &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        let options = AnalysisOptions { threads: 4, ..Default::default() };
        let parallel = analyze_sources(sources, &linux_dpm_apis(), &options).unwrap();
        assert_eq!(sequential.reports, parallel.reports);
        assert_eq!(
            sequential.stats.functions_analyzed,
            parallel.stats.functions_analyzed
        );
    }

    #[test]
    fn recursive_functions_get_default_breaking() {
        let src = r#"module m;
            fn even(n, dev) { pm_runtime_get(dev); odd(n, dev); return; }
            fn odd(n, dev) { pm_runtime_put(dev); even(n, dev); return; }"#;
        // Must terminate and produce summaries for both.
        let result =
            analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
        assert!(result.summaries.get("even").is_some());
        assert!(result.summaries.get("odd").is_some());
    }

    #[test]
    fn reports_by_function_groups() {
        let result =
            analyze_sources([FIGURE8], &linux_dpm_apis(), &AnalysisOptions::default())
                .unwrap();
        let grouped = reports_by_function(&result.reports);
        assert_eq!(grouped.len(), 1);
        assert!(grouped.contains_key("radeon_crtc_set_config"));
    }
}
