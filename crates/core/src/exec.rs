//! Symbolic execution of paths (step II of Figure 4; Figure 6 and
//! Algorithm 1 of the paper).
//!
//! Each structural path is executed symbolically. The executor maintains a
//! constraint (`cons`), a refcount-change map (`changes`), and a valuation
//! (`vmap`) from program variables to symbolic terms. Call instructions
//! consult the summary database and *fork* the state once per applicable
//! callee entry (Algorithm 1); `random` introduces fresh unknowns; branch
//! terminators contribute the branch condition (or its negation) to the
//! path constraint, pruning infeasible paths eagerly.
//!
//! Symbolic names are derived from `(instruction, occurrence)` pairs so
//! that two paths sharing a prefix name the same call result or random
//! value identically — the property that makes their summaries comparable
//! during IPP checking.

use std::collections::{BTreeMap, HashMap};

use rid_ir::{BlockId, Function, Inst, InstId, Operand, Pred, Rvalue, Terminator};
use rid_solver::{project, Conj, Lit, SatOptions, Subst, Term, Var};

use crate::budget::{BudgetMeter, DegradeReason};
use crate::paths::{enumerate_paths_metered, Path, PathLimits};
use crate::summary::{SummaryDb, SummaryEntry};

/// A finalized path summary: one [`SummaryEntry`] plus provenance.
#[derive(Clone, Debug)]
pub struct PathEntry {
    /// The summary entry (constraint already projected onto externals).
    pub entry: SummaryEntry,
    /// Index of the structural path this entry came from.
    pub path_index: usize,
    /// The block trace of that path (for diagnostics).
    pub trace: Vec<BlockId>,
}

/// Result of summarizing all paths of one function.
#[derive(Clone, Debug, Default)]
pub struct SummarizeOutcome {
    /// Finalized path entries, in deterministic order.
    pub path_entries: Vec<PathEntry>,
    /// Whether any limit or budget was hit, in which case the function
    /// summary must include the default entry (§5.2). Always equals
    /// `degrade.is_some()`.
    pub partial: bool,
    /// Why the analysis degraded, when it did (caps, fuel, or deadline;
    /// the panic/retry reasons are assigned by the driver).
    pub degrade: Option<DegradeReason>,
    /// Number of structural paths enumerated.
    pub paths_enumerated: usize,
    /// Number of symbolic states explored (feasible forks).
    pub states_explored: usize,
}

/// One symbolic state: constraint + refcount changes. The valuation is
/// shared per path (all forks of a path see the same assignments; they
/// differ only in constraints and changes).
#[derive(Clone, Debug)]
struct State {
    cons: Conj,
    changes: BTreeMap<Term, i64>,
}

/// A symbolic value: either a term or a lazily represented comparison
/// (comparisons become literals when branched on; if a comparison result
/// is consumed as a plain value it is materialized as an opaque unknown,
/// an abstraction loss the paper accepts, §5.4).
#[derive(Clone, Debug)]
enum SymValue {
    Term(Term),
    Cmp(Pred, Term, Term),
}

struct PathExecutor<'a> {
    func: &'a Function,
    db: &'a SummaryDb,
    limits: &'a PathLimits,
    sat: SatOptions,
    /// Flat instruction index, for stable site ids.
    inst_index: HashMap<InstId, u32>,
    /// Local-variable interner (for reads of never-assigned variables).
    locals: HashMap<String, u32>,
}

impl<'a> PathExecutor<'a> {
    fn new(
        func: &'a Function,
        db: &'a SummaryDb,
        limits: &'a PathLimits,
        sat: SatOptions,
    ) -> Self {
        let inst_index =
            func.insts().enumerate().map(|(i, (id, _))| (id, i as u32)).collect();
        PathExecutor { func, db, limits, sat, inst_index, locals: HashMap::new() }
    }

    /// Stable symbolic site id for `(instruction, occurrence)`.
    fn site_id(&self, id: InstId, occurrence: u32) -> u32 {
        let flat = self.inst_index[&id];
        flat * (self.limits.max_block_visits.max(1) + 1) + occurrence
    }

    fn local_var(&mut self, name: &str) -> Var {
        let next = self.locals.len() as u32;
        let id = *self.locals.entry(name.to_owned()).or_insert(next);
        Var::local(id)
    }

    fn value_of(&mut self, vmap: &HashMap<String, SymValue>, op: &Operand) -> SymValue {
        match op {
            Operand::Int(v) => SymValue::Term(Term::int(*v)),
            Operand::Bool(b) => SymValue::Term(if *b { Term::TRUE } else { Term::FALSE }),
            Operand::Null => SymValue::Term(Term::NULL),
            // Function references are opaque constants; intern one symbol
            // per referenced name so comparisons of the same reference
            // agree (the callback-contract extension reads them from the
            // IR directly, not from here).
            Operand::FuncRef(name) => {
                let var = self.local_var(&format!("@{name}"));
                SymValue::Term(Term::var(var))
            }
            Operand::Var(name) => match vmap.get(name) {
                Some(v) => v.clone(),
                None => SymValue::Term(Term::var(self.local_var(name))),
            },
        }
    }

    /// Coerces a symbolic value to a term; comparisons materialize as
    /// fresh unknowns tied to the consuming site.
    fn term_of(
        &mut self,
        vmap: &HashMap<String, SymValue>,
        op: &Operand,
        site: u32,
    ) -> Term {
        match self.value_of(vmap, op) {
            SymValue::Term(t) => t,
            SymValue::Cmp(..) => Term::var(Var::random(site, 1)),
        }
    }

    /// Executes one path; returns finalized entries (empty when the path
    /// is infeasible) and whether the subcase limit was hit.
    fn run_path(&mut self, path: &Path, path_index: usize) -> (Vec<PathEntry>, bool, usize) {
        let mut vmap: HashMap<String, SymValue> = HashMap::new();
        for (i, param) in self.func.params().iter().enumerate() {
            vmap.insert(param.clone(), SymValue::Term(Term::var(Var::formal(i as u32))));
        }
        let mut states =
            vec![State { cons: Conj::truth(), changes: BTreeMap::new() }];
        let mut occurrences: HashMap<u32, u32> = HashMap::new();
        let mut truncated = false;
        let mut states_explored = 1usize;

        for (pos, &block_id) in path.blocks.iter().enumerate() {
            let block = self.func.block(block_id);
            for (idx, inst) in block.insts.iter().enumerate() {
                let inst_id = InstId { block: block_id, index: idx as u32 };
                let flat = self.inst_index[&inst_id];
                let occ_slot = occurrences.entry(flat).or_insert(0);
                let occ = *occ_slot;
                *occ_slot += 1;
                let site = self.site_id(inst_id, occ);

                match inst {
                    Inst::Assign { dst, rvalue } => match rvalue {
                        Rvalue::Use(op) => {
                            let v = self.value_of(&vmap, op);
                            vmap.insert(dst.clone(), v);
                        }
                        Rvalue::FieldLoad { base, field } => {
                            let base_term =
                                self.term_of(&vmap, &Operand::var(base.clone()), site);
                            vmap.insert(
                                dst.clone(),
                                SymValue::Term(base_term.field(field.clone())),
                            );
                        }
                        Rvalue::Random => {
                            vmap.insert(
                                dst.clone(),
                                SymValue::Term(Term::var(Var::random(site, 0))),
                            );
                        }
                        Rvalue::Cmp { pred, lhs, rhs } => {
                            let l = self.term_of(&vmap, lhs, site);
                            let r = self.term_of(&vmap, rhs, site);
                            vmap.insert(dst.clone(), SymValue::Cmp(*pred, l, r));
                        }
                        Rvalue::Call { callee, args } => {
                            let forked = self.exec_call(
                                &mut vmap,
                                &mut states,
                                callee,
                                args,
                                Some(dst),
                                site,
                            );
                            truncated |= forked.0;
                            states_explored += forked.1;
                        }
                    },
                    Inst::Call { callee, args } => {
                        let forked =
                            self.exec_call(&mut vmap, &mut states, callee, args, None, site);
                        truncated |= forked.0;
                        states_explored += forked.1;
                    }
                    Inst::Assume { pred, lhs, rhs } => {
                        let l = self.term_of(&vmap, lhs, site);
                        let r = self.term_of(&vmap, rhs, site);
                        let lit = Lit::new(*pred, l, r);
                        for state in &mut states {
                            state.cons.push(lit.clone());
                        }
                        let sat = self.sat;
                        states.retain(|s| s.cons.is_sat_with(sat));
                    }
                    // Field stores are outside the abstraction (§5.4): the
                    // executor ignores them, a deliberate, paper-faithful
                    // source of false positives.
                    Inst::FieldStore { .. } => {}
                }
                if states.is_empty() {
                    return (Vec::new(), truncated, states_explored);
                }
            }

            // Terminator: constrain toward the path's chosen successor.
            let is_last = pos + 1 == path.blocks.len();
            match &block.term {
                Terminator::Return(ret_op) => {
                    debug_assert!(is_last);
                    let entries = self.finalize(&mut vmap, states, ret_op.as_ref(), path, path_index);
                    return (entries, truncated, states_explored);
                }
                Terminator::Jump(_) => {}
                Terminator::Branch { cond, then_bb, else_bb } => {
                    let next = path.blocks[pos + 1];
                    // A branch whose arms coincide constrains nothing.
                    if then_bb != else_bb {
                        let take_then = next == *then_bb;
                        let lit = match self.value_of(&vmap, &Operand::var(cond.clone())) {
                            SymValue::Cmp(pred, l, r) => {
                                let pred = if take_then { pred } else { pred.negated() };
                                Some(Lit::new(pred, l, r))
                            }
                            SymValue::Term(Term::Int(c)) => {
                                // Constant condition: the other arm is dead.
                                if (c != 0) == take_then {
                                    None
                                } else {
                                    states.clear();
                                    None
                                }
                            }
                            SymValue::Term(t) => {
                                let pred = if take_then { Pred::Ne } else { Pred::Eq };
                                Some(Lit::new(pred, t, Term::int(0)))
                            }
                        };
                        if let Some(lit) = lit {
                            for state in &mut states {
                                state.cons.push(lit.clone());
                            }
                            let sat = self.sat;
                            states.retain(|s| s.cons.is_sat_with(sat));
                        }
                        if states.is_empty() {
                            return (Vec::new(), truncated, states_explored);
                        }
                    }
                }
                Terminator::Unreachable => {
                    return (Vec::new(), truncated, states_explored);
                }
            }
        }
        // Paths always end in a Return (enumeration guarantees it).
        unreachable!("path did not end in a return terminator")
    }

    /// Executes a call instruction per Algorithm 1: each applicable callee
    /// summary entry forks a state. Returns (subcase-limit-hit, new states
    /// created).
    fn exec_call(
        &mut self,
        vmap: &mut HashMap<String, SymValue>,
        states: &mut Vec<State>,
        callee: &str,
        args: &[Operand],
        dst: Option<&str>,
        site: u32,
    ) -> (bool, usize) {
        let actuals: Vec<Term> =
            args.iter().map(|a| self.term_of(vmap, a, site)).collect();
        let ret_var = Term::var(Var::call_ret(site, 0));
        if let Some(dst) = dst {
            vmap.insert(dst.to_owned(), SymValue::Term(ret_var.clone()));
        }

        let default_summary;
        let summary = match self.db.get(callee) {
            Some(s) if !s.entries.is_empty() => s,
            _ => {
                default_summary = crate::summary::Summary::default_for(callee);
                // Unknown callee: unconstrained return, no changes.
                &default_summary
            }
        };

        let mut new_states = Vec::new();
        let mut truncated = false;
        let mut created = 0usize;
        'outer: for state in states.iter() {
            for entry in &summary.entries {
                let inst_entry = entry.instantiate(&actuals, &ret_var, site);
                let cons = state.cons.and(&inst_entry.cons);
                // Algorithm 1 line 6: skip unsatisfiable combinations.
                if !inst_entry.cons.is_truth() && !cons.is_sat_with(self.sat) {
                    continue;
                }
                let mut changes = state.changes.clone();
                for (rc, delta) in &inst_entry.changes {
                    *changes.entry(rc.clone()).or_insert(0) += delta;
                }
                new_states.push(State { cons, changes });
                created += 1;
                if new_states.len() >= self.limits.max_subcases {
                    truncated = true;
                    break 'outer;
                }
            }
        }
        *states = new_states;
        (truncated, created)
    }

    /// Finalizes states at a `return`: encodes the return value as `[0]`,
    /// rewrites locals that equal external terms, renames surviving
    /// internal refcount roots to opaque objects, and projects the
    /// constraint onto external terms (§3.3.3).
    fn finalize(
        &mut self,
        vmap: &mut HashMap<String, SymValue>,
        states: Vec<State>,
        ret_op: Option<&Operand>,
        path: &Path,
        path_index: usize,
    ) -> Vec<PathEntry> {
        let mut out = Vec::new();
        let ret_term = ret_op.map(|op| self.term_of(vmap, op, u32::MAX / 2));
        for state in states {
            let mut cons = state.cons;
            if let Some(ret) = &ret_term {
                cons.push(Lit::new(Pred::Eq, Term::var(Var::ret()), ret.clone()));
            }

            // Build the equality substitution: internal vars provably equal
            // (syntactically, offset 0) to external terms get rewritten.
            let subst = equality_subst(&cons);

            // Rewrite change keys; then rename surviving internal roots to
            // dense opaque ids (deterministic: keys are sorted).
            let mut changes: BTreeMap<Term, i64> = BTreeMap::new();
            let mut opaque_ids: BTreeMap<Var, u32> = BTreeMap::new();
            for (rc, delta) in &state.changes {
                if *delta == 0 {
                    continue;
                }
                let rc = rc.substitute(&subst);
                let rc = match rc.root_var() {
                    Some(root) if !root.is_external() => {
                        let next = opaque_ids.len() as u32;
                        let id = *opaque_ids.entry(root).or_insert(next);
                        let mut s = Subst::new();
                        s.insert(root, Term::var(Var::opaque(id, 0)));
                        rc.substitute(&s)
                    }
                    _ => rc,
                };
                *changes.entry(rc).or_insert(0) += delta;
            }
            changes.retain(|_, delta| *delta != 0);

            // Remove conditions on local variables (projection).
            let cons = project(&cons, Term::is_external);
            if cons.is_trivially_false() || !cons.is_sat_with(self.sat) {
                continue;
            }
            let ret_display = ret_term.as_ref().map(|t| {
                let t = t.substitute(&subst);
                if t.is_external() {
                    t
                } else {
                    Term::var(Var::ret())
                }
            });
            let mut entry = SummaryEntry { cons, changes, ret: ret_display };
            entry.cons.normalize();
            out.push(PathEntry { entry, path_index, trace: path.blocks.clone() });
        }
        out
    }
}

/// Extracts a substitution from syntactic equalities in `cons`, mapping
/// internal variables to the external (or constant) terms they equal.
/// Saturated so chains (`a = b ∧ b = [0]`) resolve fully.
fn equality_subst(cons: &Conj) -> Subst {
    let mut subst = Subst::new();
    loop {
        let mut changed = false;
        for lit in cons.lits() {
            if lit.pred != Pred::Eq || lit.offset != 0 {
                continue;
            }
            for (a, b) in [(&lit.lhs, &lit.rhs), (&lit.rhs, &lit.lhs)] {
                let Term::Var(v) = a else { continue };
                if v.is_external() || subst.contains_key(v) {
                    continue;
                }
                let b2 = b.substitute(&subst);
                // Avoid self-referential substitutions.
                let mut vars = Vec::new();
                b2.collect_vars(&mut vars);
                if vars.contains(v) {
                    continue;
                }
                if b2.is_external() {
                    subst.insert(*v, b2);
                    changed = true;
                }
            }
        }
        if !changed {
            return subst;
        }
    }
}

/// Summarizes every path of `func` (steps I and II of Figure 4).
///
/// The result contains one [`PathEntry`] per feasible `(path, subcase)`
/// combination; IPP checking ([`crate::ipp`]) consumes these directly.
#[must_use]
pub fn summarize_paths(
    func: &Function,
    db: &SummaryDb,
    limits: &PathLimits,
    sat: SatOptions,
) -> SummarizeOutcome {
    summarize_paths_metered(func, db, limits, sat, &BudgetMeter::unlimited(), None)
}

/// Like [`summarize_paths`], but cooperative: polls `meter` between paths
/// (and inside enumeration) and, when `fuel` is given, installs it as the
/// ambient solver budget for the duration of the summarization. Budget
/// exhaustion degrades the outcome exactly like a cap hit, with the
/// reason recorded in [`SummarizeOutcome::degrade`].
#[must_use]
pub fn summarize_paths_metered(
    func: &Function,
    db: &SummaryDb,
    limits: &PathLimits,
    sat: SatOptions,
    meter: &BudgetMeter,
    fuel: Option<u64>,
) -> SummarizeOutcome {
    let _fuel_guard = fuel.map(rid_solver::fuel::install);
    let path_set = enumerate_paths_metered(func, limits, meter);
    let mut deadline = path_set.deadline_hit;
    let path_cap = path_set.truncated && !path_set.deadline_hit;
    let mut subcase_cap = false;
    let mut entry_cap = false;
    let mut outcome =
        SummarizeOutcome { paths_enumerated: path_set.paths.len(), ..Default::default() };
    for (index, path) in path_set.paths.iter().enumerate() {
        if meter.expired() {
            deadline = true;
            break;
        }
        let mut executor = PathExecutor::new(func, db, limits, sat);
        let (entries, truncated, states) = executor.run_path(path, index);
        subcase_cap |= truncated;
        outcome.states_explored += states;
        outcome.path_entries.extend(entries);
        if outcome.path_entries.len() > limits.max_entries {
            outcome.path_entries.truncate(limits.max_entries);
            entry_cap = true;
            break;
        }
    }
    // Read the fuel flag while the guard is still installed. Severity
    // order: an aborting condition (deadline) dominates, then fuel (the
    // solver silently went approximate), then the structural caps.
    let fuel_exhausted = fuel.is_some() && rid_solver::fuel::exhausted();
    outcome.degrade = if deadline {
        Some(DegradeReason::Deadline)
    } else if fuel_exhausted {
        Some(DegradeReason::SolverFuel)
    } else if path_cap {
        Some(DegradeReason::PathCap)
    } else if subcase_cap {
        Some(DegradeReason::SubcaseCap)
    } else if entry_cap {
        Some(DegradeReason::EntryCap)
    } else {
        None
    };
    outcome.partial = outcome.degrade.is_some();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::linux_dpm_apis;
    use rid_frontend::parse_module;
    use rid_solver::VarKind;

    fn summarize(src: &str, func: &str) -> SummarizeOutcome {
        let module = parse_module(src).unwrap();
        let f = module.function(func).unwrap();
        summarize_paths(f, &linux_dpm_apis(), &PathLimits::default(), SatOptions::default())
    }

    #[test]
    fn constant_return_function() {
        let out = summarize("module m; fn f() { return 7; }", "f");
        assert_eq!(out.path_entries.len(), 1);
        let e = &out.path_entries[0].entry;
        assert!(!e.has_changes());
        // [0] = 7 recorded in the constraint.
        let want = Conj::from_lits([Lit::new(
            Pred::Eq,
            Term::var(Var::ret()),
            Term::int(7),
        )]);
        assert!(e.cons.implies(&want));
    }

    #[test]
    fn refcount_change_recorded() {
        let out = summarize(
            "module m; fn f(dev) { pm_runtime_get_sync(dev); return 0; }",
            "f",
        );
        assert_eq!(out.path_entries.len(), 1);
        let e = &out.path_entries[0].entry;
        assert_eq!(e.change(&Term::var(Var::formal(0)).field("pm")), 1);
    }

    #[test]
    fn get_put_balances_to_zero() {
        let out = summarize(
            "module m; fn f(dev) { pm_runtime_get_sync(dev); pm_runtime_put(dev); return 0; }",
            "f",
        );
        assert_eq!(out.path_entries.len(), 1);
        assert!(!out.path_entries[0].entry.has_changes());
    }

    #[test]
    fn figure1_foo_produces_inconsistent_pair() {
        // The worked example of the paper: reg_read is unknown (default
        // summary → unconstrained result), so both paths survive with
        // identical external constraints but different PM changes.
        let out = summarize(
            r#"module m;
            fn foo(dev) {
                assume dev != null;
                let v = reg_read(dev, 0x54);
                if (v <= 0) { goto exit; }
                pm_runtime_get(dev);
            exit:
                return 0;
            }"#,
            "foo",
        );
        assert_eq!(out.path_entries.len(), 2);
        let pm = Term::var(Var::formal(0)).field("pm");
        let changes: Vec<i64> =
            out.path_entries.iter().map(|p| p.entry.change(&pm)).collect();
        assert!(changes.contains(&1) && changes.contains(&0));
        // Both constraints are mutually satisfiable (the IPP condition).
        let joint = out.path_entries[0].entry.cons.and(&out.path_entries[1].entry.cons);
        assert!(joint.is_sat());
    }

    #[test]
    fn distinguishable_paths_are_not_inconsistent() {
        // Correct error handling: the return value separates the paths.
        let out = summarize(
            r#"module m;
            fn f(dev) {
                let ret = pm_runtime_get_sync(dev);
                if (ret < 0) {
                    pm_runtime_put(dev);
                    return -1;
                }
                return 0;
            }"#,
            "f",
        );
        assert_eq!(out.path_entries.len(), 2);
        let joint = out.path_entries[0].entry.cons.and(&out.path_entries[1].entry.cons);
        assert!(!joint.is_sat(), "return values −1 vs 0 must be distinguishable");
    }

    #[test]
    fn branch_condition_on_call_result_constrains_ret() {
        // ret = f(); if (ret < 0) return ret;  → entry with [0] ≤ −1.
        let out = summarize(
            r#"module m;
            fn g(dev) {
                let ret = pm_runtime_get_sync(dev);
                if (ret < 0) { return ret; }
                return 0;
            }"#,
            "g",
        );
        let negative_entry = out
            .path_entries
            .iter()
            .find(|p| {
                p.entry.cons.implies(&Conj::from_lits([Lit::new(
                    Pred::Lt,
                    Term::var(Var::ret()),
                    Term::int(0),
                )]))
            })
            .expect("error path entry");
        // The increment is still recorded on the error path (Figure 8!).
        assert_eq!(
            negative_entry.entry.change(&Term::var(Var::formal(0)).field("pm")),
            1
        );
    }

    #[test]
    fn infeasible_paths_are_pruned() {
        let out = summarize(
            r#"module m;
            fn f(x) {
                assume x > 0;
                if (x < 0) { pm_runtime_get(x); return 1; }
                return 0;
            }"#,
            "f",
        );
        // Only the else path is feasible.
        assert_eq!(out.path_entries.len(), 1);
        assert!(!out.path_entries[0].entry.has_changes());
    }

    #[test]
    fn subcase_limit_marks_partial() {
        // Chain enough two-entry allocators to blow the 10-subcase cap.
        let mut src = String::from("module m; fn f(dev) {\n");
        for i in 0..6 {
            src.push_str(&format!("let a{i} = PyList_New(0);\n"));
        }
        src.push_str("return 0; }");
        let module = parse_module(&src).unwrap();
        let f = module.function("f").unwrap();
        let out = summarize_paths(
            f,
            &crate::apis::python_c_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        assert!(out.partial);
        assert!(out.path_entries.len() <= PathLimits::default().max_subcases);
    }

    #[test]
    fn leaked_local_allocation_keys_on_opaque() {
        let module = parse_module(
            "module m; fn leak() { let o = PyList_New(0); return 0; }",
        )
        .unwrap();
        let f = module.function("leak").unwrap();
        let out = summarize_paths(
            f,
            &crate::apis::python_c_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        // Success entry leaks +1 on an opaque object; failure entry has no
        // change. (This is the conditional-leak shape IPP checking flags.)
        let leaky: Vec<_> =
            out.path_entries.iter().filter(|p| p.entry.has_changes()).collect();
        assert_eq!(leaky.len(), 1);
        let root = leaky[0].entry.changes.keys().next().unwrap().root_var().unwrap();
        assert_eq!(root.kind, VarKind::Opaque);
    }

    #[test]
    fn returned_allocation_keys_on_ret() {
        let module = parse_module(
            "module m; fn make() { let o = PyList_New(0); return o; }",
        )
        .unwrap();
        let f = module.function("make").unwrap();
        let out = summarize_paths(
            f,
            &crate::apis::python_c_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        let success = out
            .path_entries
            .iter()
            .find(|p| p.entry.has_changes())
            .expect("success entry");
        // The +1 is keyed on [0].rc — exactly PyList_New's own shape.
        assert_eq!(
            success.entry.change(&Term::var(Var::ret()).field("rc")),
            1
        );
    }

    #[test]
    fn shared_prefix_names_call_results_identically() {
        // The call happens before the branch; both paths must key the
        // leaked object on the same opaque id so IPP checking can compare
        // their change maps.
        let module = parse_module(
            r#"module m;
            fn f(x) {
                let o = PyList_New(0);
                let c = check(x);
                if (c < 0) { return 0; }
                return 0;
            }"#,
        )
        .unwrap();
        let f = module.function("f").unwrap();
        let out = summarize_paths(
            f,
            &crate::apis::python_c_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        let keys: std::collections::BTreeSet<&Term> = out
            .path_entries
            .iter()
            .flat_map(|p| p.entry.changes.keys())
            .collect();
        assert_eq!(keys.len(), 1, "one shared key across paths: {keys:?}");
    }

    #[test]
    fn branch_with_equal_arms_constrains_nothing() {
        use rid_ir::{FunctionBuilder, Operand, Rvalue};
        let mut b = FunctionBuilder::new("f", ["dev"]);
        let join = b.new_block();
        b.assign("c", Rvalue::cmp(Pred::Gt, Operand::var("dev"), Operand::Int(0)));
        b.branch("c", join, join);
        b.switch_to(join);
        b.ret(Operand::Int(0));
        let f = b.finish().unwrap();
        let out = summarize_paths(
            &f,
            &linux_dpm_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        // Two structural paths collapse into identical summaries.
        assert!(!out.path_entries.is_empty());
        for pe in &out.path_entries {
            assert!(pe.entry.cons.implies(&Conj::from_lits([Lit::new(
                Pred::Eq,
                Term::var(Var::ret()),
                Term::int(0),
            )])));
        }
    }

    #[test]
    fn constant_branch_conditions_prune_statically() {
        let out = summarize(
            r#"module m;
            fn f(dev) {
                let debug = 0;
                if (debug) { pm_runtime_get(dev); }
                return 0;
            }"#,
            "f",
        );
        assert_eq!(out.path_entries.len(), 1);
        assert!(!out.path_entries[0].entry.has_changes());
    }

    #[test]
    fn field_store_is_ignored_by_execution() {
        // The store would distinguish the paths at runtime; the executor
        // deliberately drops it (§5.4) so the entries remain comparable.
        let out = summarize(
            r#"module m;
            fn f(dev) {
                let st = peek(dev);
                if (st > 0) {
                    dev.flag = 1;
                    pm_runtime_get(dev);
                }
                return 0;
            }"#,
            "f",
        );
        assert_eq!(out.path_entries.len(), 2);
        let joint =
            out.path_entries[0].entry.cons.and(&out.path_entries[1].entry.cons);
        assert!(joint.is_sat(), "paths must look indistinguishable");
    }

    #[test]
    fn void_functions_have_no_ret_conditions() {
        let out = summarize(
            "module m; fn f(dev) { pm_runtime_get(dev); return; }",
            "f",
        );
        assert_eq!(out.path_entries.len(), 1);
        let mut vars = Vec::new();
        out.path_entries[0].entry.cons.collect_vars(&mut vars);
        assert!(vars.iter().all(|v| v.kind != rid_solver::VarKind::Ret));
    }

    #[test]
    fn loop_bodies_execute_at_most_once() {
        // The loop condition must vary per iteration (a call result) or
        // the unrolled path is infeasible in the arithmetic-free
        // abstraction.
        let out = summarize(
            r#"module m;
            fn f(dev) {
                while (has_work(dev)) { pm_runtime_get(dev); }
                return 0;
            }"#,
            "f",
        );
        let pm = Term::var(Var::formal(0)).field("pm");
        let max_change =
            out.path_entries.iter().map(|p| p.entry.change(&pm)).max().unwrap();
        assert_eq!(max_change, 1, "loop unrolled at most once");
    }
}
