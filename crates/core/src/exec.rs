//! Symbolic execution of paths (step II of Figure 4; Figure 6 and
//! Algorithm 1 of the paper).
//!
//! Each structural path is executed symbolically. The executor maintains a
//! constraint (`cons`), a refcount-change map (`changes`), and a valuation
//! (`vmap`) from program variables to symbolic terms. Call instructions
//! consult the summary database and *fork* the state once per applicable
//! callee entry (Algorithm 1); `random` introduces fresh unknowns; branch
//! terminators contribute the branch condition (or its negation) to the
//! path constraint, pruning infeasible paths eagerly.
//!
//! Symbolic names are derived from `(instruction, occurrence)` pairs so
//! that two paths sharing a prefix name the same call result or random
//! value identically — the property that makes their summaries comparable
//! during IPP checking.
//!
//! Two execution strategies produce byte-identical summaries:
//!
//! * [`ExecMode::PerPath`] — the reference implementation: every path is
//!   executed standalone from the entry block, and every feasibility query
//!   rebuilds the difference system from scratch.
//! * [`ExecMode::Tree`] (default) — paths are folded into a shared-prefix
//!   [`PathTree`] and walked depth-first. The walk state (valuation,
//!   occurrence counters, constraint states with their incremental
//!   solvers) forks only at divergence points, so shared prefixes execute
//!   once; feasibility queries go through a per-function memo cache and an
//!   [`IncrementalSolver`] carried inside each state.
//!
//! Equivalence rests on three invariants: the DFS enumeration emits paths
//! in the tree's depth-first leaf order (checked per function, see
//! [`PathTree::leaves_in_path_order`]); occurrence counters and the local
//! interner live in the forked walk state, so every leaf observes exactly
//! the history its standalone execution would; and with unlimited fuel the
//! incremental solver agrees with the batch solver literal for literal.

use std::collections::{BTreeMap, HashMap};

use rid_ir::{BlockId, BlockRef, Function, Inst, InstId, Operand, Pred, Rvalue, Sym, Terminator};
use rid_solver::{project, Conj, IncrementalSolver, Lit, SatOptions, Subst, Term, Var};

use crate::budget::{BudgetMeter, DegradeReason};
use crate::paths::{enumerate_paths_metered, Path, PathLimits, PathTree};
use crate::summary::{SummaryDb, SummaryEntry};

/// Which execution strategy summarization uses. All modes produce
/// identical summaries; they differ only in cost (and in diagnostic
/// counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Adaptive per-function choice (the default): functions whose
    /// enumerated paths share at least half their blocks as common
    /// prefixes run in tree mode, everything else per-path. This erases
    /// the tree-mode overhead on corpus-shaped functions (few short
    /// paths, nothing to share) while keeping the tree's win on branchy
    /// CFGs.
    #[default]
    Auto,
    /// Shared-prefix tree execution with incremental solving and a sat
    /// memo cache, unconditionally.
    Tree,
    /// The reference implementation: each path executed standalone, every
    /// query solved from scratch.
    PerPath,
}

/// A finalized path summary: one [`SummaryEntry`] plus provenance.
#[derive(Clone, Debug)]
pub struct PathEntry {
    /// The summary entry (constraint already projected onto externals).
    pub entry: SummaryEntry,
    /// Index of the structural path this entry came from.
    pub path_index: usize,
    /// The block trace of that path (for diagnostics).
    pub trace: Vec<BlockId>,
}

/// Result of summarizing all paths of one function.
#[derive(Clone, Debug, Default)]
pub struct SummarizeOutcome {
    /// Finalized path entries, in deterministic order.
    pub path_entries: Vec<PathEntry>,
    /// Whether any limit or budget was hit, in which case the function
    /// summary must include the default entry (§5.2). Always equals
    /// `degrade.is_some()`.
    pub partial: bool,
    /// Why the analysis degraded, when it did (caps, fuel, or deadline;
    /// the panic/retry reasons are assigned by the driver).
    pub degrade: Option<DegradeReason>,
    /// Number of structural paths enumerated.
    pub paths_enumerated: usize,
    /// Number of symbolic states explored (feasible forks).
    pub states_explored: usize,
    /// Satisfiability queries issued (trivial true/false short-circuits
    /// are not counted).
    pub sat_queries: usize,
    /// Of those, how many were answered from the memo cache (always 0 in
    /// [`ExecMode::PerPath`], which bypasses the cache).
    pub sat_memo_hits: usize,
    /// Queries (including memo hits) that came back satisfiable.
    pub sat_sat: usize,
    /// Queries (including memo hits) that came back unsatisfiable.
    pub sat_unsat: usize,
    /// Incremental-solver snapshots taken (state forks that cloned an
    /// attached solver matrix; always 0 in per-path mode).
    pub solver_snapshots: usize,
    /// Largest literal depth observed in a snapshotted solver.
    pub snapshot_depth_max: usize,
    /// Basic blocks actually executed (tree nodes visited in tree mode;
    /// the sum of executed path prefixes in per-path mode).
    pub blocks_executed: usize,
    /// Upper bound on blocks skipped thanks to prefix sharing: the total
    /// block count over all paths minus `blocks_executed` (tree mode
    /// only; 0 in per-path mode).
    pub blocks_saved: usize,
    /// The concrete strategy that executed this function: [`ExecMode::Tree`]
    /// or [`ExecMode::PerPath`] ([`ExecMode::Auto`] resolves to one of the
    /// two before execution starts).
    pub mode_used: ExecMode,
}

/// One symbolic state: constraint + refcount changes. The valuation is
/// shared per path (all forks of a path see the same assignments; they
/// differ only in constraints and changes).
///
/// In tree mode a state *may* also carry an [`IncrementalSolver`] that
/// mirrors `cons` literal for literal, so feasibility checks relax a
/// closed difference matrix instead of re-closing from scratch; cloning
/// the state at a fork point snapshots the solver too. The solver is
/// attached lazily — only once the conjunction is big enough that
/// from-scratch closure costs more than maintaining (and cloning) the
/// matrix — so the tiny straight-line functions that dominate a kernel
/// corpus never pay for it. Per-path mode always leaves it `None`.
#[derive(Debug)]
struct State {
    cons: Conj,
    changes: BTreeMap<Term, i64>,
    solver: Option<IncrementalSolver>,
}

// Manual `Clone`: fork points snapshot the attached solver through the
// thread-local scratch pool (`clone_from` into a recycled matrix) instead
// of allocating a fresh one. States pruned as unsatisfiable and states
// drained at a `return` retire their solvers back into the pool, so one
// worker executing a batch of components keeps reusing the same few
// matrices. Answer-neutral: a recycled solver is reset to the new() state.
impl Clone for State {
    fn clone(&self) -> State {
        State {
            cons: self.cons.clone(),
            changes: self.changes.clone(),
            solver: self.solver.as_ref().map(rid_solver::incsolver::snapshot),
        }
    }
}

/// A symbolic value: either a term or a lazily represented comparison
/// (comparisons become literals when branched on; if a comparison result
/// is consumed as a plain value it is materialized as an opaque unknown,
/// an abstraction loss the paper accepts, §5.4).
#[derive(Clone, Debug)]
enum SymValue {
    Term(Term),
    Cmp(Pred, Term, Term),
}

/// All per-walk mutable execution state. Per-path mode creates one per
/// path; tree mode clones it at divergence points (the "fork symbolic
/// state only at divergence" of the execution-tree design). Everything
/// whose content depends on the executed prefix must live here — in
/// particular the occurrence counters and the local-variable interner,
/// which give symbolic names their path-prefix determinism.
#[derive(Clone, Debug, Default)]
struct WalkState {
    vmap: HashMap<Sym, SymValue>,
    states: Vec<State>,
    /// Per-instruction occurrence counts (for `(inst, occ)` site ids).
    occurrences: HashMap<u32, u32>,
    /// Local-variable interner (for reads of never-assigned variables).
    locals: HashMap<Sym, u32>,
}

/// Literal count at which a state's conjunction earns an attached
/// incremental solver. Below this, a from-scratch closure over a handful
/// of variables is cheaper than building, cloning (at every fork), and
/// relaxing a dense difference matrix — and most corpus functions never
/// get here, so they carry no solver at all. Attachment is answer-neutral
/// (see [`PathExecutor::sat_lazy`]), so this is purely a perf knob.
const SOLVER_ATTACH_LITS: usize = 6;

/// Conjunctions shorter than this are solved directly instead of
/// memoized: keying the memo clones the literal vector, which costs more
/// than deciding a one-literal difference system from scratch.
const MEMO_MIN_LITS: usize = 2;

/// Result of one tree walk (entry ordering/cap already applied).
struct TreeRun {
    entries: Vec<PathEntry>,
    entry_cap: bool,
    deadline: bool,
}

/// A read-only view over callee summaries during summarization.
///
/// The classic shape is a plain [`SummaryDb`] snapshot. The work-stealing
/// scheduler instead publishes each computed summary into a lock-free
/// per-function slot (`OnceLock`) the moment it is done; dependency
/// counting guarantees every slot a caller can reach is already set, so
/// reads need no lock at all. Predefined summaries shadow definitions in
/// both variants (§5.1).
#[derive(Clone, Copy)]
pub(crate) enum SummaryView<'a> {
    /// A summary database (predefined + everything computed so far).
    Db(&'a SummaryDb),
    /// Predefined summaries plus per-function publication slots, indexed
    /// by call-graph node id.
    Slots {
        predefined: &'a SummaryDb,
        graph: &'a crate::callgraph::CallGraph,
        slots: &'a [std::sync::OnceLock<crate::summary::Summary>],
    },
}

impl<'a> SummaryView<'a> {
    // Takes `self` by value (the view is `Copy`) so the returned borrow
    // lives for `'a`, independent of the view binding itself.
    pub(crate) fn get_sym(self, name: Sym) -> Option<&'a crate::summary::Summary> {
        match self {
            SummaryView::Db(db) => db.get_sym(name),
            SummaryView::Slots { predefined, graph, slots } => {
                if let Some(s) = predefined.get_sym(name) {
                    return Some(s); // predefined shadows the definition
                }
                graph.index_of(&name).and_then(|i| slots[i].get())
            }
        }
    }
}

struct PathExecutor<'a> {
    func: &'a Function,
    db: SummaryView<'a>,
    limits: &'a PathLimits,
    sat: SatOptions,
    /// Flat instruction index, for stable site ids.
    inst_index: HashMap<InstId, u32>,
    /// Tree mode: states carry incremental solvers and queries go through
    /// the memo cache. Per-path mode: both disabled (reference behavior).
    use_incremental: bool,
    /// Conjunction-keyed satisfiability memo. Two states that accumulate
    /// the same literal sequence (common under prefix sharing, where
    /// sibling subtrees re-derive the same call-entry constraints) hit
    /// the cache instead of the solver.
    sat_memo: HashMap<Vec<Lit>, bool>,
    sat_queries: usize,
    memo_hits: usize,
    sat_sat: usize,
    sat_unsat: usize,
    solver_snapshots: usize,
    snapshot_depth_max: usize,
    /// Accumulated across the whole walk (both modes).
    subcase_hit: bool,
    states_created: usize,
    blocks_executed: usize,
}

impl<'a> PathExecutor<'a> {
    fn new(
        func: &'a Function,
        db: SummaryView<'a>,
        limits: &'a PathLimits,
        sat: SatOptions,
        use_incremental: bool,
    ) -> Self {
        let inst_index =
            func.insts().enumerate().map(|(i, (id, _))| (id, i as u32)).collect();
        PathExecutor {
            func,
            db,
            limits,
            sat,
            inst_index,
            use_incremental,
            sat_memo: HashMap::new(),
            sat_queries: 0,
            memo_hits: 0,
            sat_sat: 0,
            sat_unsat: 0,
            solver_snapshots: 0,
            snapshot_depth_max: 0,
            subcase_hit: false,
            states_created: 0,
            blocks_executed: 0,
        }
    }

    /// Stable symbolic site id for `(instruction, occurrence)`.
    fn site_id(&self, id: InstId, occurrence: u32) -> u32 {
        let flat = self.inst_index[&id];
        flat * (self.limits.max_block_visits.max(1) + 1) + occurrence
    }

    fn value_of(&self, st: &mut WalkState, op: &Operand) -> SymValue {
        match op {
            Operand::Int(v) => SymValue::Term(Term::int(*v)),
            Operand::Bool(b) => SymValue::Term(if *b { Term::TRUE } else { Term::FALSE }),
            Operand::Null => SymValue::Term(Term::NULL),
            // Function references are opaque constants; intern one symbol
            // per referenced name so comparisons of the same reference
            // agree (the callback-contract extension reads them from the
            // IR directly, not from here).
            Operand::FuncRef(name) => {
                SymValue::Term(Term::var(local_var(&mut st.locals, Sym::new(&format!("@{name}")))))
            }
            Operand::Var(name) => {
                if let Some(v) = st.vmap.get(name) {
                    return v.clone();
                }
                SymValue::Term(Term::var(local_var(&mut st.locals, *name)))
            }
        }
    }

    /// Coerces a symbolic value to a term; comparisons materialize as
    /// fresh unknowns tied to the consuming site.
    fn term_of(&self, st: &mut WalkState, op: &Operand, site: u32) -> Term {
        match self.value_of(st, op) {
            SymValue::Term(t) => t,
            SymValue::Cmp(..) => Term::var(Var::random(site, 1)),
        }
    }

    /// The initial walk state: formals bound, one true state.
    fn fresh_walk(&mut self) -> WalkState {
        let mut vmap = HashMap::new();
        for (i, param) in self.func.params().iter().enumerate() {
            vmap.insert(*param, SymValue::Term(Term::var(Var::formal(i as u32))));
        }
        self.states_created += 1;
        WalkState {
            vmap,
            // The solver is attached lazily once the conjunction is big
            // enough to amortize the matrix (see `sat_lazy`).
            states: vec![State { cons: Conj::truth(), changes: BTreeMap::new(), solver: None }],
            occurrences: HashMap::new(),
            locals: HashMap::new(),
        }
    }

    /// One satisfiability decision without a state solver (used after
    /// substitution in [`PathExecutor::finalize`], where any attached
    /// solver would be stale anyway). Trivial conjunctions short-circuit
    /// (uncounted, as in the batch path); tree mode still consults the
    /// memo.
    fn query_sat(&mut self, cons: &Conj) -> bool {
        if cons.is_trivially_false() {
            return false;
        }
        if cons.lits().is_empty() {
            return true;
        }
        self.sat_queries += 1;
        let mut span = rid_obs::span(rid_obs::SpanKind::Solve, self.func.name());
        let answer = if !self.use_incremental || cons.lits().len() < MEMO_MIN_LITS {
            cons.is_sat_with(self.sat)
        } else if let Some(&answer) = self.sat_memo.get(cons.lits()) {
            self.memo_hits += 1;
            answer
        } else {
            let answer = cons.is_sat_with(self.sat);
            self.sat_memo.insert(cons.lits().to_vec(), answer);
            answer
        };
        span.set_value(u64::from(answer));
        self.note_answer(answer)
    }

    /// Tallies a query outcome into the sat/unsat counters.
    fn note_answer(&mut self, answer: bool) -> bool {
        if answer {
            self.sat_sat += 1;
        } else {
            self.sat_unsat += 1;
        }
        answer
    }

    /// Tallies one incremental-solver snapshot (a fork-point clone of an
    /// attached difference matrix) at the given literal depth.
    fn note_snapshot(&mut self, depth: usize) {
        self.solver_snapshots += 1;
        self.snapshot_depth_max = self.snapshot_depth_max.max(depth);
    }

    /// One satisfiability decision against a state's (possibly absent)
    /// incremental solver. Trivial conjunctions short-circuit (uncounted,
    /// as in the batch path); otherwise tree mode consults the memo, then
    /// the solver — **attaching one first** if the conjunction has grown
    /// past [`SOLVER_ATTACH_LITS`]. Attachment replays the post-fold
    /// literal sequence once and is answer-neutral (incremental and batch
    /// solving agree literal for literal; see `rid_solver::incsolver`).
    /// Per-path mode always solves from scratch — the reference behavior
    /// the differential tests pin tree mode against.
    fn sat_lazy(&mut self, cons: &Conj, solver: &mut Option<IncrementalSolver>) -> bool {
        if cons.is_trivially_false() {
            return false;
        }
        if cons.lits().is_empty() {
            return true;
        }
        self.sat_queries += 1;
        let mut span = rid_obs::span(rid_obs::SpanKind::Solve, self.func.name());
        let answer = if !self.use_incremental || cons.lits().len() < MEMO_MIN_LITS {
            cons.is_sat_with(self.sat)
        } else if let Some(&answer) = self.sat_memo.get(cons.lits()) {
            self.memo_hits += 1;
            answer
        } else {
            if solver.is_none() && cons.lits().len() >= SOLVER_ATTACH_LITS {
                let mut fresh = rid_solver::incsolver::scratch();
                fresh.push_conj(cons);
                *solver = Some(fresh);
            }
            let answer = match solver.as_ref() {
                Some(s) => s.is_sat(self.sat),
                None => cons.is_sat_with(self.sat),
            };
            self.sat_memo.insert(cons.lits().to_vec(), answer);
            answer
        };
        span.set_value(u64::from(answer));
        self.note_answer(answer)
    }

    /// Pushes one literal into every live state (constraint + incremental
    /// solver) and prunes the states that became unsatisfiable.
    fn constrain(&mut self, st: &mut WalkState, lit: Lit) {
        for state in &mut st.states {
            if let Some(solver) = &mut state.solver {
                solver.push(&lit);
            }
            state.cons.push(lit.clone());
        }
        // Order-preserving prune (entry order is part of byte-identity),
        // with split borrows so `sat_lazy` can attach a solver in place.
        let mut i = 0;
        while i < st.states.len() {
            let State { cons, solver, .. } = &mut st.states[i];
            let cons = &*cons;
            if self.sat_lazy(cons, solver) {
                i += 1;
            } else {
                let mut dead = st.states.remove(i);
                if let Some(s) = dead.solver.take() {
                    rid_solver::incsolver::recycle(s);
                }
            }
        }
    }

    /// Executes the instructions of one block (not its terminator).
    /// Returns `false` when every state died (the walk below this point
    /// is infeasible).
    fn exec_block(&mut self, st: &mut WalkState, block_id: BlockId) -> bool {
        self.blocks_executed += 1;
        let block = self.func.block(block_id);
        for (idx, inst) in block.insts.iter().enumerate() {
            let inst_id = InstId { block: block_id, index: idx as u32 };
            let flat = self.inst_index[&inst_id];
            let occ_slot = st.occurrences.entry(flat).or_insert(0);
            let occ = *occ_slot;
            *occ_slot += 1;
            let site = self.site_id(inst_id, occ);

            match inst {
                Inst::Assign { dst, rvalue } => match rvalue {
                    Rvalue::Use(op) => {
                        let v = self.value_of(st, op);
                        st.vmap.insert(*dst, v);
                    }
                    Rvalue::FieldLoad { base, field } => {
                        let base_term =
                            self.term_of(st, &Operand::var(*base), site);
                        st.vmap.insert(
                            *dst,
                            SymValue::Term(base_term.field(field.as_str())),
                        );
                    }
                    Rvalue::Random => {
                        st.vmap.insert(
                            *dst,
                            SymValue::Term(Term::var(Var::random(site, 0))),
                        );
                    }
                    Rvalue::Cmp { pred, lhs, rhs } => {
                        let l = self.term_of(st, lhs, site);
                        let r = self.term_of(st, rhs, site);
                        st.vmap.insert(*dst, SymValue::Cmp(*pred, l, r));
                    }
                    Rvalue::Call { callee, args } => {
                        self.exec_call(st, *callee, args, Some(*dst), site);
                    }
                },
                Inst::Call { callee, args } => {
                    self.exec_call(st, *callee, args, None, site);
                }
                Inst::Assume { pred, lhs, rhs } => {
                    let l = self.term_of(st, lhs, site);
                    let r = self.term_of(st, rhs, site);
                    self.constrain(st, Lit::new(*pred, l, r));
                }
                // Field stores are outside the abstraction (§5.4): the
                // executor ignores them, a deliberate, paper-faithful
                // source of false positives.
                Inst::FieldStore { .. } => {}
            }
            if st.states.is_empty() {
                return false;
            }
        }
        true
    }

    /// Applies a block's terminator constraint toward the chosen
    /// successor. Returns `false` when every state died.
    fn constrain_edge(&mut self, st: &mut WalkState, block: BlockRef<'_>, next: BlockId) -> bool {
        if let Terminator::Branch { cond, then_bb, else_bb } = block.term {
            // A branch whose arms coincide constrains nothing.
            if then_bb != else_bb {
                let take_then = next == *then_bb;
                let lit = match self.value_of(st, &Operand::var(*cond)) {
                    SymValue::Cmp(pred, l, r) => {
                        let pred = if take_then { pred } else { pred.negated() };
                        Some(Lit::new(pred, l, r))
                    }
                    SymValue::Term(Term::Int(c)) => {
                        // Constant condition: the other arm is dead.
                        if (c != 0) == take_then {
                            None
                        } else {
                            st.states.clear();
                            None
                        }
                    }
                    SymValue::Term(t) => {
                        let pred = if take_then { Pred::Ne } else { Pred::Eq };
                        Some(Lit::new(pred, t, Term::int(0)))
                    }
                };
                if let Some(lit) = lit {
                    self.constrain(st, lit);
                }
                if st.states.is_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// Executes one path standalone (the per-path reference mode);
    /// returns finalized entries (empty when the path is infeasible).
    fn run_path(&mut self, path: &Path, path_index: usize) -> Vec<PathEntry> {
        let mut st = self.fresh_walk();
        for (pos, &block_id) in path.blocks.iter().enumerate() {
            if !self.exec_block(&mut st, block_id) {
                return Vec::new();
            }
            let block = self.func.block(block_id);
            match block.term {
                Terminator::Return(ret_op) => {
                    debug_assert!(pos + 1 == path.blocks.len());
                    return self.finalize(&mut st, ret_op.as_ref(), path, path_index);
                }
                Terminator::Unreachable => return Vec::new(),
                _ => {
                    let next = path.blocks[pos + 1];
                    if !self.constrain_edge(&mut st, block, next) {
                        return Vec::new();
                    }
                }
            }
        }
        // Paths always end in a Return (enumeration guarantees it).
        unreachable!("path did not end in a return terminator")
    }

    /// Walks the shared-prefix tree depth-first, forking the walk state at
    /// each divergence point. Entries come out in path order: streamed
    /// directly when the tree's leaf order matches path order (every CFG
    /// without duplicate paths), otherwise buffered and stably reordered
    /// by path index before the entry cap is applied.
    fn run_tree(&mut self, tree: &PathTree, paths: &[Path], meter: &BudgetMeter) -> TreeRun {
        let streaming = tree.leaves_in_path_order();
        let mut run = TreeRun { entries: Vec::new(), entry_cap: false, deadline: false };
        let mut stack: Vec<(u32, WalkState)> = Vec::new();
        for &root in tree.roots.iter().rev() {
            let st = self.fresh_walk();
            stack.push((root, st));
        }
        'walk: while let Some((at, mut st)) = stack.pop() {
            let node = &tree.nodes[at as usize];
            if !self.exec_block(&mut st, node.block) {
                continue;
            }
            let block = self.func.block(node.block);
            match block.term {
                Terminator::Return(ret_op) => {
                    // A leaf. Finalize once; duplicate paths (a branch
                    // whose arms coincide) reuse the entries with their
                    // own path index.
                    let mut first: Option<Vec<PathEntry>> = None;
                    for &pi in &node.path_indices {
                        if meter.expired() {
                            run.deadline = true;
                            break 'walk;
                        }
                        let pi = pi as usize;
                        let entries = match &first {
                            None => {
                                let done =
                                    self.finalize(&mut st, ret_op.as_ref(), &paths[pi], pi);
                                first = Some(done.clone());
                                done
                            }
                            Some(done) => done
                                .iter()
                                .map(|pe| PathEntry {
                                    entry: pe.entry.clone(),
                                    path_index: pi,
                                    trace: paths[pi].blocks.clone(),
                                })
                                .collect(),
                        };
                        run.entries.extend(entries);
                        if streaming && run.entries.len() > self.limits.max_entries {
                            run.entries.truncate(self.limits.max_entries);
                            run.entry_cap = true;
                            break 'walk;
                        }
                    }
                }
                Terminator::Unreachable => {}
                _ => {
                    let children = &node.children;
                    let k = children.len();
                    if k == 0 {
                        continue; // interior node of a truncated path set
                    }
                    if k > 1 {
                        self.states_created += (k - 1) * st.states.len();
                    }
                    // Fork in child order (last child takes ownership),
                    // then push reversed so the first child pops first —
                    // preserving depth-first enumeration order.
                    let mut forked: Vec<(u32, WalkState)> = Vec::with_capacity(k);
                    for (i, &child) in children.iter().enumerate() {
                        let mut child_st = if i + 1 == k {
                            std::mem::take(&mut st)
                        } else {
                            for state in &st.states {
                                if let Some(s) = &state.solver {
                                    self.note_snapshot(s.len());
                                }
                            }
                            st.clone()
                        };
                        let next = tree.nodes[child as usize].block;
                        if self.constrain_edge(&mut child_st, block, next) {
                            forked.push((child, child_st));
                        }
                    }
                    for frame in forked.into_iter().rev() {
                        stack.push(frame);
                    }
                }
            }
        }
        if !streaming {
            run.entries.sort_by_key(|pe| pe.path_index); // stable
            if run.entries.len() > self.limits.max_entries {
                run.entries.truncate(self.limits.max_entries);
                run.entry_cap = true;
            }
        }
        run
    }

    /// Executes a call instruction per Algorithm 1: each applicable callee
    /// summary entry forks a state.
    fn exec_call(
        &mut self,
        st: &mut WalkState,
        callee: Sym,
        args: &[Operand],
        dst: Option<Sym>,
        site: u32,
    ) {
        let actuals: Vec<Term> =
            args.iter().map(|a| self.term_of(st, a, site)).collect();
        let ret_var = Term::var(Var::call_ret(site, 0));
        if let Some(dst) = dst {
            st.vmap.insert(dst, SymValue::Term(ret_var.clone()));
        }

        let default_summary;
        let summary = match self.db.get_sym(callee) {
            Some(s) if !s.entries.is_empty() => s,
            _ => {
                default_summary = crate::summary::Summary::default_for(callee);
                // Unknown callee: unconstrained return, no changes.
                &default_summary
            }
        };

        let old_states = std::mem::take(&mut st.states);
        let mut new_states = Vec::new();
        'outer: for mut state in old_states {
            let n_entries = summary.entries.len();
            for (ei, entry) in summary.entries.iter().enumerate() {
                let inst_entry = entry.instantiate(&actuals, &ret_var, site);
                let cons = state.cons.and(&inst_entry.cons);
                // The last entry takes the state's solver; earlier ones
                // snapshot it (clone = fork point rollback).
                let mut solver = if ei + 1 == n_entries {
                    state.solver.take()
                } else {
                    if let Some(s) = &state.solver {
                        self.note_snapshot(s.len());
                    }
                    state.solver.as_ref().map(rid_solver::incsolver::snapshot)
                };
                if let Some(s) = solver.as_mut() {
                    s.push_conj(&inst_entry.cons);
                }
                // Algorithm 1 line 6: skip unsatisfiable combinations.
                if !inst_entry.cons.is_truth() && !self.sat_lazy(&cons, &mut solver) {
                    if let Some(s) = solver {
                        rid_solver::incsolver::recycle(s);
                    }
                    continue;
                }
                let mut changes = state.changes.clone();
                for (rc, delta) in &inst_entry.changes {
                    *changes.entry(rc.clone()).or_insert(0) += delta;
                }
                new_states.push(State { cons, changes, solver });
                self.states_created += 1;
                if new_states.len() >= self.limits.max_subcases {
                    self.subcase_hit = true;
                    break 'outer;
                }
            }
        }
        st.states = new_states;
    }

    /// Finalizes states at a `return`: encodes the return value as `[0]`,
    /// rewrites locals that equal external terms, renames surviving
    /// internal refcount roots to opaque objects, and projects the
    /// constraint onto external terms (§3.3.3). Drains the walk's states.
    fn finalize(
        &mut self,
        st: &mut WalkState,
        ret_op: Option<&Operand>,
        path: &Path,
        path_index: usize,
    ) -> Vec<PathEntry> {
        let mut out = Vec::new();
        let ret_term = ret_op.map(|op| self.term_of(st, op, u32::MAX / 2));
        let mut scratch_vars = Vec::new();
        for mut state in std::mem::take(&mut st.states) {
            // The walk is over for this state; its solver goes back to the
            // pool (projection below builds a fresh formula anyway).
            if let Some(s) = state.solver.take() {
                rid_solver::incsolver::recycle(s);
            }
            let mut cons = state.cons;
            if let Some(ret) = &ret_term {
                cons.push(Lit::new(Pred::Eq, Term::var(Var::ret()), ret.clone()));
            }

            // Build the equality substitution: internal vars provably equal
            // (syntactically, offset 0) to external terms get rewritten.
            let subst = equality_subst(&cons, &mut scratch_vars);

            // Rewrite change keys; then rename surviving internal roots to
            // dense opaque ids (deterministic: keys are sorted).
            let mut changes: BTreeMap<Term, i64> = BTreeMap::new();
            let mut opaque_ids: BTreeMap<Var, u32> = BTreeMap::new();
            for (rc, delta) in &state.changes {
                if *delta == 0 {
                    continue;
                }
                let rc = rc.substitute(&subst);
                let rc = match rc.root_var() {
                    Some(root) if !root.is_external() => {
                        let next = opaque_ids.len() as u32;
                        let id = *opaque_ids.entry(root).or_insert(next);
                        let mut s = Subst::new();
                        s.insert(root, Term::var(Var::opaque(id, 0)));
                        rc.substitute(&s)
                    }
                    _ => rc,
                };
                *changes.entry(rc).or_insert(0) += delta;
            }
            changes.retain(|_, delta| *delta != 0);

            // Remove conditions on local variables (projection). The
            // projected conjunction is a fresh formula, so it is checked
            // without an incremental solver (but through the memo).
            let cons = project(&cons, Term::is_external);
            if !self.query_sat(&cons) {
                continue;
            }
            let ret_display = ret_term.as_ref().map(|t| {
                let t = t.substitute(&subst);
                if t.is_external() {
                    t
                } else {
                    Term::var(Var::ret())
                }
            });
            let mut entry = SummaryEntry { cons, changes, ret: ret_display };
            entry.cons.normalize();
            out.push(PathEntry { entry, path_index, trace: path.blocks.clone() });
        }
        out
    }
}

/// Interns a local-variable name (shared by reads of never-assigned
/// variables and opaque function references). Lives outside the executor
/// because the interner belongs to the forked walk state: ids must depend
/// only on the executed prefix, exactly as in standalone execution.
fn local_var(locals: &mut HashMap<Sym, u32>, name: Sym) -> Var {
    let next = locals.len() as u32;
    let id = *locals.entry(name).or_insert(next);
    Var::local(id)
}

/// Extracts a substitution from syntactic equalities in `cons`, mapping
/// internal variables to the external (or constant) terms they equal.
/// Saturated so chains (`a = b ∧ b = [0]`) resolve fully. `scratch` is a
/// caller-provided buffer reused across literals (and across states).
fn equality_subst(cons: &Conj, scratch: &mut Vec<Var>) -> Subst {
    let mut subst = Subst::new();
    loop {
        let mut changed = false;
        for lit in cons.lits() {
            if lit.pred != Pred::Eq || lit.offset != 0 {
                continue;
            }
            for (a, b) in [(&lit.lhs, &lit.rhs), (&lit.rhs, &lit.lhs)] {
                let Term::Var(v) = a else { continue };
                if v.is_external() || subst.contains_key(v) {
                    continue;
                }
                let b2 = b.substitute(&subst);
                // Avoid self-referential substitutions.
                scratch.clear();
                b2.collect_vars(scratch);
                if scratch.contains(v) {
                    continue;
                }
                if b2.is_external() {
                    subst.insert(*v, b2);
                    changed = true;
                }
            }
        }
        if !changed {
            return subst;
        }
    }
}

/// Summarizes every path of `func` (steps I and II of Figure 4).
///
/// The result contains one [`PathEntry`] per feasible `(path, subcase)`
/// combination; IPP checking ([`crate::ipp`]) consumes these directly.
#[must_use]
pub fn summarize_paths(
    func: &Function,
    db: &SummaryDb,
    limits: &PathLimits,
    sat: SatOptions,
) -> SummarizeOutcome {
    summarize_paths_metered(func, db, limits, sat, &BudgetMeter::unlimited(), None)
}

/// Like [`summarize_paths`], but cooperative: polls `meter` between paths
/// (and inside enumeration) and, when `fuel` is given, installs it as the
/// ambient solver budget for the duration of the summarization. Budget
/// exhaustion degrades the outcome exactly like a cap hit, with the
/// reason recorded in [`SummarizeOutcome::degrade`].
#[must_use]
pub fn summarize_paths_metered(
    func: &Function,
    db: &SummaryDb,
    limits: &PathLimits,
    sat: SatOptions,
    meter: &BudgetMeter,
    fuel: Option<u64>,
) -> SummarizeOutcome {
    summarize_paths_mode(func, db, limits, sat, meter, fuel, ExecMode::default())
}

/// Like [`summarize_paths_metered`], with an explicit execution strategy.
/// All modes produce identical summaries (the differential test suite
/// pins this down); [`ExecMode::PerPath`] exists as the oracle and as a
/// fallback switch, and [`ExecMode::Auto`] (the default) picks between
/// the two per function from the enumerated paths' shared-prefix ratio.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn summarize_paths_mode(
    func: &Function,
    db: &SummaryDb,
    limits: &PathLimits,
    sat: SatOptions,
    meter: &BudgetMeter,
    fuel: Option<u64>,
    mode: ExecMode,
) -> SummarizeOutcome {
    summarize_paths_view(func, SummaryView::Db(db), limits, sat, meter, fuel, mode)
}

/// Fraction (numerator over denominator in block counts) of per-path work
/// that must be shared prefix before [`ExecMode::Auto`] picks tree mode.
///
/// The break-even sits near 1/4, not the 1/2 this constant originally
/// claimed: the v5 baseline's full-corpus tree runs saved ~30% of block
/// executions (`blocks_saved / (blocks_executed + blocks_saved)`) while
/// running at per-path speed or better, yet under the 1/2 threshold Auto
/// resolved *every* function to per-path — the shared-prefix ratio of a
/// two-path function topping out near 1/2 means the old cut was
/// unreachable in practice. 3/10 puts the switch just above measured
/// break-even, so the trie build, memo inserts, and solver snapshots are
/// only paid where the saved block executions more than cover them.
const AUTO_TREE_SHARE_NUM: usize = 3;
const AUTO_TREE_SHARE_DEN: usize = 10;

/// The internal entry point all execution goes through; see
/// [`summarize_paths_mode`]. Takes a [`SummaryView`] so the scheduler's
/// lock-free slot storage and the plain database flavor share one
/// implementation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn summarize_paths_view(
    func: &Function,
    db: SummaryView<'_>,
    limits: &PathLimits,
    sat: SatOptions,
    meter: &BudgetMeter,
    fuel: Option<u64>,
    mode: ExecMode,
) -> SummarizeOutcome {
    let _fuel_guard = fuel.map(rid_solver::fuel::install);
    let path_set = {
        let mut span = rid_obs::span(rid_obs::SpanKind::Enumerate, func.name());
        let path_set = enumerate_paths_metered(func, limits, meter);
        span.set_value(path_set.paths.len() as u64);
        path_set
    };
    let mut deadline = path_set.deadline_hit;
    let path_cap = path_set.truncated && !path_set.deadline_hit;
    let mut entry_cap = false;
    let mut outcome =
        SummarizeOutcome { paths_enumerated: path_set.paths.len(), ..Default::default() };
    // Resolve the adaptive mode before constructing the executor. A
    // single path has no prefix to share, so it always runs per-path.
    // For the rest the shared-block count comes from a linear LCP scan:
    // DFS enumeration emits paths in trie order, so the trie's node
    // count is the total block count minus the summed longest common
    // prefixes of consecutive paths — no trie is built for functions
    // that end up running per-path.
    let mode = match mode {
        ExecMode::Auto => {
            if path_set.paths.len() < 2 {
                ExecMode::PerPath
            } else {
                let mut total = 0;
                let mut shared = 0;
                for pair in path_set.paths.windows(2) {
                    shared += pair[0]
                        .blocks
                        .iter()
                        .zip(&pair[1].blocks)
                        .take_while(|(a, b)| a == b)
                        .count();
                }
                for path in &path_set.paths {
                    total += path.blocks.len();
                }
                if shared * AUTO_TREE_SHARE_DEN >= total * AUTO_TREE_SHARE_NUM {
                    ExecMode::Tree
                } else {
                    ExecMode::PerPath
                }
            }
        }
        concrete => concrete,
    };
    outcome.mode_used = mode;
    let mut executor =
        PathExecutor::new(func, db, limits, sat, mode == ExecMode::Tree);
    match mode {
        ExecMode::Auto => unreachable!("Auto resolves before execution"),
        ExecMode::Tree => {
            if path_set.paths.len() == 1 {
                // Degenerate tree: a single root chain has no divergence
                // point, so there is nothing to share and nothing to
                // fork. Walk it directly and skip the trie build — the
                // common case, since most kernel functions are
                // straight-line (memo and lazy solver still apply).
                for (index, path) in path_set.paths.iter().enumerate() {
                    if meter.expired() {
                        deadline = true;
                        break;
                    }
                    let entries = executor.run_path(path, index);
                    outcome.path_entries.extend(entries);
                    if outcome.path_entries.len() > limits.max_entries {
                        outcome.path_entries.truncate(limits.max_entries);
                        entry_cap = true;
                        break;
                    }
                }
            } else {
                let tree = PathTree::from_paths(&path_set.paths);
                let run = executor.run_tree(&tree, &path_set.paths, meter);
                deadline |= run.deadline;
                entry_cap = run.entry_cap;
                outcome.path_entries = run.entries;
                outcome.blocks_saved =
                    tree.total_path_blocks.saturating_sub(executor.blocks_executed);
            }
        }
        ExecMode::PerPath => {
            for (index, path) in path_set.paths.iter().enumerate() {
                if meter.expired() {
                    deadline = true;
                    break;
                }
                let entries = executor.run_path(path, index);
                outcome.path_entries.extend(entries);
                if outcome.path_entries.len() > limits.max_entries {
                    outcome.path_entries.truncate(limits.max_entries);
                    entry_cap = true;
                    break;
                }
            }
        }
    }
    let subcase_cap = executor.subcase_hit;
    outcome.states_explored = executor.states_created;
    outcome.blocks_executed = executor.blocks_executed;
    outcome.sat_queries = executor.sat_queries;
    outcome.sat_memo_hits = executor.memo_hits;
    outcome.sat_sat = executor.sat_sat;
    outcome.sat_unsat = executor.sat_unsat;
    outcome.solver_snapshots = executor.solver_snapshots;
    outcome.snapshot_depth_max = executor.snapshot_depth_max;
    // Read the fuel flag while the guard is still installed. Severity
    // order: an aborting condition (deadline) dominates, then fuel (the
    // solver silently went approximate), then the structural caps.
    let fuel_exhausted = fuel.is_some() && rid_solver::fuel::exhausted();
    outcome.degrade = if deadline {
        Some(DegradeReason::Deadline)
    } else if fuel_exhausted {
        Some(DegradeReason::SolverFuel)
    } else if path_cap {
        Some(DegradeReason::PathCap)
    } else if subcase_cap {
        Some(DegradeReason::SubcaseCap)
    } else if entry_cap {
        Some(DegradeReason::EntryCap)
    } else {
        None
    };
    outcome.partial = outcome.degrade.is_some();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::linux_dpm_apis;
    use rid_frontend::parse_module;
    use rid_solver::VarKind;

    fn summarize(src: &str, func: &str) -> SummarizeOutcome {
        let module = parse_module(src).unwrap();
        let f = module.function(func).unwrap();
        summarize_paths(f, &linux_dpm_apis(), &PathLimits::default(), SatOptions::default())
    }

    /// Runs both execution modes and asserts identical summaries, then
    /// returns the tree-mode outcome (what `summarize_paths` produces).
    fn summarize_both(src: &str, func: &str) -> SummarizeOutcome {
        let module = parse_module(src).unwrap();
        let f = module.function(func).unwrap();
        let limits = PathLimits::default();
        let meter = BudgetMeter::unlimited();
        let tree = summarize_paths_mode(
            f,
            &linux_dpm_apis(),
            &limits,
            SatOptions::default(),
            &meter,
            None,
            ExecMode::Tree,
        );
        let per_path = summarize_paths_mode(
            f,
            &linux_dpm_apis(),
            &limits,
            SatOptions::default(),
            &meter,
            None,
            ExecMode::PerPath,
        );
        assert_eq!(tree.path_entries.len(), per_path.path_entries.len());
        for (a, b) in tree.path_entries.iter().zip(&per_path.path_entries) {
            assert_eq!(a.path_index, b.path_index);
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.entry, b.entry);
        }
        assert_eq!(tree.partial, per_path.partial);
        tree
    }

    #[test]
    fn constant_return_function() {
        let out = summarize("module m; fn f() { return 7; }", "f");
        assert_eq!(out.path_entries.len(), 1);
        let e = &out.path_entries[0].entry;
        assert!(!e.has_changes());
        // [0] = 7 recorded in the constraint.
        let want = Conj::from_lits([Lit::new(
            Pred::Eq,
            Term::var(Var::ret()),
            Term::int(7),
        )]);
        assert!(e.cons.implies(&want));
    }

    #[test]
    fn refcount_change_recorded() {
        let out = summarize(
            "module m; fn f(dev) { pm_runtime_get_sync(dev); return 0; }",
            "f",
        );
        assert_eq!(out.path_entries.len(), 1);
        let e = &out.path_entries[0].entry;
        assert_eq!(e.change(&Term::var(Var::formal(0)).field("pm")), 1);
    }

    #[test]
    fn get_put_balances_to_zero() {
        let out = summarize(
            "module m; fn f(dev) { pm_runtime_get_sync(dev); pm_runtime_put(dev); return 0; }",
            "f",
        );
        assert_eq!(out.path_entries.len(), 1);
        assert!(!out.path_entries[0].entry.has_changes());
    }

    #[test]
    fn figure1_foo_produces_inconsistent_pair() {
        // The worked example of the paper: reg_read is unknown (default
        // summary → unconstrained result), so both paths survive with
        // identical external constraints but different PM changes.
        let out = summarize_both(
            r#"module m;
            fn foo(dev) {
                assume dev != null;
                let v = reg_read(dev, 0x54);
                if (v <= 0) { goto exit; }
                pm_runtime_get(dev);
            exit:
                return 0;
            }"#,
            "foo",
        );
        assert_eq!(out.path_entries.len(), 2);
        let pm = Term::var(Var::formal(0)).field("pm");
        let changes: Vec<i64> =
            out.path_entries.iter().map(|p| p.entry.change(&pm)).collect();
        assert!(changes.contains(&1) && changes.contains(&0));
        // Both constraints are mutually satisfiable (the IPP condition).
        let joint = out.path_entries[0].entry.cons.and(&out.path_entries[1].entry.cons);
        assert!(joint.is_sat());
    }

    #[test]
    fn distinguishable_paths_are_not_inconsistent() {
        // Correct error handling: the return value separates the paths.
        let out = summarize_both(
            r#"module m;
            fn f(dev) {
                let ret = pm_runtime_get_sync(dev);
                if (ret < 0) {
                    pm_runtime_put(dev);
                    return -1;
                }
                return 0;
            }"#,
            "f",
        );
        assert_eq!(out.path_entries.len(), 2);
        let joint = out.path_entries[0].entry.cons.and(&out.path_entries[1].entry.cons);
        assert!(!joint.is_sat(), "return values −1 vs 0 must be distinguishable");
    }

    #[test]
    fn branch_condition_on_call_result_constrains_ret() {
        // ret = f(); if (ret < 0) return ret;  → entry with [0] ≤ −1.
        let out = summarize(
            r#"module m;
            fn g(dev) {
                let ret = pm_runtime_get_sync(dev);
                if (ret < 0) { return ret; }
                return 0;
            }"#,
            "g",
        );
        let negative_entry = out
            .path_entries
            .iter()
            .find(|p| {
                p.entry.cons.implies(&Conj::from_lits([Lit::new(
                    Pred::Lt,
                    Term::var(Var::ret()),
                    Term::int(0),
                )]))
            })
            .expect("error path entry");
        // The increment is still recorded on the error path (Figure 8!).
        assert_eq!(
            negative_entry.entry.change(&Term::var(Var::formal(0)).field("pm")),
            1
        );
    }

    #[test]
    fn infeasible_paths_are_pruned() {
        let out = summarize_both(
            r#"module m;
            fn f(x) {
                assume x > 0;
                if (x < 0) { pm_runtime_get(x); return 1; }
                return 0;
            }"#,
            "f",
        );
        // Only the else path is feasible.
        assert_eq!(out.path_entries.len(), 1);
        assert!(!out.path_entries[0].entry.has_changes());
    }

    #[test]
    fn subcase_limit_marks_partial() {
        // Chain enough two-entry allocators to blow the 10-subcase cap.
        let mut src = String::from("module m; fn f(dev) {\n");
        for i in 0..6 {
            src.push_str(&format!("let a{i} = PyList_New(0);\n"));
        }
        src.push_str("return 0; }");
        let module = parse_module(&src).unwrap();
        let f = module.function("f").unwrap();
        let out = summarize_paths(
            f,
            &crate::apis::python_c_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        assert!(out.partial);
        assert!(out.path_entries.len() <= PathLimits::default().max_subcases);
    }

    #[test]
    fn leaked_local_allocation_keys_on_opaque() {
        let module = parse_module(
            "module m; fn leak() { let o = PyList_New(0); return 0; }",
        )
        .unwrap();
        let f = module.function("leak").unwrap();
        let out = summarize_paths(
            f,
            &crate::apis::python_c_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        // Success entry leaks +1 on an opaque object; failure entry has no
        // change. (This is the conditional-leak shape IPP checking flags.)
        let leaky: Vec<_> =
            out.path_entries.iter().filter(|p| p.entry.has_changes()).collect();
        assert_eq!(leaky.len(), 1);
        let root = leaky[0].entry.changes.keys().next().unwrap().root_var().unwrap();
        assert_eq!(root.kind, VarKind::Opaque);
    }

    #[test]
    fn returned_allocation_keys_on_ret() {
        let module = parse_module(
            "module m; fn make() { let o = PyList_New(0); return o; }",
        )
        .unwrap();
        let f = module.function("make").unwrap();
        let out = summarize_paths(
            f,
            &crate::apis::python_c_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        let success = out
            .path_entries
            .iter()
            .find(|p| p.entry.has_changes())
            .expect("success entry");
        // The +1 is keyed on [0].rc — exactly PyList_New's own shape.
        assert_eq!(
            success.entry.change(&Term::var(Var::ret()).field("rc")),
            1
        );
    }

    #[test]
    fn shared_prefix_names_call_results_identically() {
        // The call happens before the branch; both paths must key the
        // leaked object on the same opaque id so IPP checking can compare
        // their change maps.
        let module = parse_module(
            r#"module m;
            fn f(x) {
                let o = PyList_New(0);
                let c = check(x);
                if (c < 0) { return 0; }
                return 0;
            }"#,
        )
        .unwrap();
        let f = module.function("f").unwrap();
        let out = summarize_paths(
            f,
            &crate::apis::python_c_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        let keys: std::collections::BTreeSet<&Term> = out
            .path_entries
            .iter()
            .flat_map(|p| p.entry.changes.keys())
            .collect();
        assert_eq!(keys.len(), 1, "one shared key across paths: {keys:?}");
    }

    #[test]
    fn branch_with_equal_arms_constrains_nothing() {
        use rid_ir::{FunctionBuilder, Operand, Rvalue};
        let mut b = FunctionBuilder::new("f", ["dev"]);
        let join = b.new_block();
        b.assign("c", Rvalue::cmp(Pred::Gt, Operand::var("dev"), Operand::Int(0)));
        b.branch("c", join, join);
        b.switch_to(join);
        b.ret(Operand::Int(0));
        let f = b.finish().unwrap();
        let out = summarize_paths(
            &f,
            &linux_dpm_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        // Two structural paths collapse into identical summaries.
        assert!(!out.path_entries.is_empty());
        for pe in &out.path_entries {
            assert!(pe.entry.cons.implies(&Conj::from_lits([Lit::new(
                Pred::Eq,
                Term::var(Var::ret()),
                Term::int(0),
            )])));
        }
    }

    #[test]
    fn duplicate_paths_preserve_per_path_entry_order() {
        // A branch with coinciding arms *above* another branch replays a
        // two-leaf subtree: tree leaf order (0,2,1,3) differs from path
        // order (0,1,2,3), exercising the buffered reorder path.
        use rid_ir::{FunctionBuilder, Operand, Rvalue};
        let mut b = FunctionBuilder::new("f", ["dev"]);
        let mid = b.new_block();
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        b.assign("c", Rvalue::cmp(Pred::Gt, Operand::var("dev"), Operand::Int(0)));
        b.branch("c", mid, mid);
        b.switch_to(mid);
        b.assign("d", Rvalue::cmp(Pred::Lt, Operand::var("dev"), Operand::Int(10)));
        b.branch("d", then_bb, else_bb);
        b.switch_to(then_bb);
        b.ret(Operand::Int(1));
        b.switch_to(else_bb);
        b.ret(Operand::Int(0));
        let f = b.finish().unwrap();
        let limits = PathLimits::default();
        let meter = BudgetMeter::unlimited();
        let tree = summarize_paths_mode(
            &f,
            &linux_dpm_apis(),
            &limits,
            SatOptions::default(),
            &meter,
            None,
            ExecMode::Tree,
        );
        let per_path = summarize_paths_mode(
            &f,
            &linux_dpm_apis(),
            &limits,
            SatOptions::default(),
            &meter,
            None,
            ExecMode::PerPath,
        );
        assert_eq!(tree.path_entries.len(), 4);
        let idx: Vec<usize> =
            tree.path_entries.iter().map(|p| p.path_index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3], "entries must come out in path order");
        for (a, b) in tree.path_entries.iter().zip(&per_path.path_entries) {
            assert_eq!(a.entry, b.entry);
            assert_eq!(a.path_index, b.path_index);
        }
    }

    #[test]
    fn tree_mode_shares_prefix_work_and_memoizes_queries() {
        // Ten sequential two-way branches after a shared prologue: tree
        // execution must visit far fewer blocks than the sum over paths.
        let mut src = String::from(
            "module m; fn f(dev) { assume dev != null; pm_runtime_get(dev);\n",
        );
        for i in 0..6 {
            src.push_str(&format!(
                "let v{i} = reg_read(dev, {i}); if (v{i} < 0) {{ pm_runtime_put(dev); }}\n"
            ));
        }
        src.push_str("return 0; }");
        let module = parse_module(&src).unwrap();
        let f = module.function("f").unwrap();
        let out = summarize_paths(
            f,
            &linux_dpm_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        assert!(out.blocks_saved > 0, "prefix sharing must save block executions");
        assert!(
            out.blocks_executed + out.blocks_saved
                >= out.paths_enumerated, // every path has ≥ 1 block
            "counters must cover the per-path total"
        );
    }

    #[test]
    fn constant_branch_conditions_prune_statically() {
        let out = summarize_both(
            r#"module m;
            fn f(dev) {
                let debug = 0;
                if (debug) { pm_runtime_get(dev); }
                return 0;
            }"#,
            "f",
        );
        assert_eq!(out.path_entries.len(), 1);
        assert!(!out.path_entries[0].entry.has_changes());
    }

    #[test]
    fn field_store_is_ignored_by_execution() {
        // The store would distinguish the paths at runtime; the executor
        // deliberately drops it (§5.4) so the entries remain comparable.
        let out = summarize_both(
            r#"module m;
            fn f(dev) {
                let st = peek(dev);
                if (st > 0) {
                    dev.flag = 1;
                    pm_runtime_get(dev);
                }
                return 0;
            }"#,
            "f",
        );
        assert_eq!(out.path_entries.len(), 2);
        let joint =
            out.path_entries[0].entry.cons.and(&out.path_entries[1].entry.cons);
        assert!(joint.is_sat(), "paths must look indistinguishable");
    }

    #[test]
    fn void_functions_have_no_ret_conditions() {
        let out = summarize(
            "module m; fn f(dev) { pm_runtime_get(dev); return; }",
            "f",
        );
        assert_eq!(out.path_entries.len(), 1);
        let mut vars = Vec::new();
        out.path_entries[0].entry.cons.collect_vars(&mut vars);
        assert!(vars.iter().all(|v| v.kind != rid_solver::VarKind::Ret));
    }

    #[test]
    fn loop_bodies_execute_at_most_once() {
        // The loop condition must vary per iteration (a call result) or
        // the unrolled path is infeasible in the arithmetic-free
        // abstraction.
        let out = summarize_both(
            r#"module m;
            fn f(dev) {
                while (has_work(dev)) { pm_runtime_get(dev); }
                return 0;
            }"#,
            "f",
        );
        let pm = Term::var(Var::formal(0)).field("pm");
        let max_change =
            out.path_entries.iter().map(|p| p.entry.change(&pm)).max().unwrap();
        assert_eq!(max_change, 1, "loop unrolled at most once");
    }
}
