//! Predefined summaries for refcount APIs (§5.1, Figure 7 of the paper).
//!
//! RID encodes refcount API specifications as *predefined summaries*: when
//! one exists for a function, the function body (if any) is never analyzed.
//! This module ships the two API families the paper evaluates — the Linux
//! DPM (dynamic power management) runtime-PM calls and the Python/C
//! reference counting API — plus a small builder for defining new families.

use rid_ir::Pred;
use rid_solver::{Conj, Lit, Term, Var};

use crate::summary::{Summary, SummaryDb, SummaryEntry};

/// Builder for predefined summaries.
///
/// # Examples
///
/// ```
/// use rid_core::apis::PredefinedBuilder;
///
/// // An API that increments `arg0.refs` and may fail with a null return:
/// let summary = PredefinedBuilder::new("acquire_thing")
///     .entry(|e| e.ret_non_null().change_ret_field("refs", 1))
///     .entry(|e| e.ret_null())
///     .build();
/// assert_eq!(summary.entries.len(), 2);
/// ```
#[derive(Debug)]
pub struct PredefinedBuilder {
    summary: Summary,
}

/// Builder for a single [`SummaryEntry`].
#[derive(Debug)]
pub struct EntryBuilder {
    entry: SummaryEntry,
}

impl Default for PredefinedBuilder {
    fn default() -> Self {
        PredefinedBuilder::new("unnamed")
    }
}

impl PredefinedBuilder {
    /// Starts a summary for the named API function.
    pub fn new(func: impl Into<rid_ir::Sym>) -> PredefinedBuilder {
        PredefinedBuilder { summary: Summary::new(func) }
    }

    /// Adds one entry configured by `f`.
    #[must_use]
    pub fn entry(mut self, f: impl FnOnce(EntryBuilder) -> EntryBuilder) -> PredefinedBuilder {
        let built = f(EntryBuilder {
            entry: SummaryEntry { cons: Conj::truth(), changes: Default::default(), ret: None },
        });
        self.summary.entries.push(built.entry);
        self
    }

    /// Finishes the summary.
    #[must_use]
    pub fn build(self) -> Summary {
        self.summary
    }
}

impl EntryBuilder {
    /// Records a change of `delta` to the refcount field `field` of formal
    /// argument `arg`.
    #[must_use]
    pub fn change_arg_field(mut self, arg: u32, field: &str, delta: i64) -> EntryBuilder {
        *self
            .entry
            .changes
            .entry(Term::var(Var::formal(arg)).field(field))
            .or_insert(0) += delta;
        self
    }

    /// Records a change of `delta` to the refcount field `field` of the
    /// returned object (for APIs returning new references).
    #[must_use]
    pub fn change_ret_field(mut self, field: &str, delta: i64) -> EntryBuilder {
        *self.entry.changes.entry(Term::var(Var::ret()).field(field)).or_insert(0) += delta;
        self
    }

    /// Constrains this entry to apply only when the return value is null.
    #[must_use]
    pub fn ret_null(mut self) -> EntryBuilder {
        self.entry.cons.push(Lit::new(Pred::Eq, Term::var(Var::ret()), Term::NULL));
        self.entry.ret = Some(Term::NULL);
        self
    }

    /// Constrains this entry to apply only when the return value is
    /// non-null.
    #[must_use]
    pub fn ret_non_null(mut self) -> EntryBuilder {
        self.entry.cons.push(Lit::new(Pred::Ne, Term::var(Var::ret()), Term::NULL));
        self.entry.ret = Some(Term::var(Var::ret()));
        self
    }

    /// Constrains the return value with an arbitrary predicate against a
    /// constant.
    #[must_use]
    pub fn ret_cmp(mut self, pred: Pred, value: i64) -> EntryBuilder {
        self.entry.cons.push(Lit::new(pred, Term::var(Var::ret()), Term::int(value)));
        self.entry.ret = Some(Term::var(Var::ret()));
        self
    }

    /// Constrains formal argument `arg` to be non-null.
    #[must_use]
    pub fn arg_non_null(mut self, arg: u32) -> EntryBuilder {
        self.entry.cons.push(Lit::new(Pred::Ne, Term::var(Var::formal(arg)), Term::NULL));
        self
    }

    /// Marks the entry as returning `[0]` unconstrained.
    #[must_use]
    pub fn ret_any(mut self) -> EntryBuilder {
        self.entry.ret = Some(Term::var(Var::ret()));
        self
    }
}

/// The name of the per-device PM refcount field used by the DPM summaries.
pub const PM_FIELD: &str = "pm";

/// The name of the Python object refcount field used by the Python/C
/// summaries.
pub const RC_FIELD: &str = "rc";

/// Predefined summaries for the Linux DPM runtime-PM API (Figure 7, top).
///
/// Note the deliberate, paper-faithful asymmetry: `pm_runtime_get*` always
/// increments the PM count **regardless of its return value** — the
/// specification whose misunderstanding causes the Figure 8 bug class —
/// while `pm_runtime_put*` always decrements.
#[must_use]
pub fn linux_dpm_apis() -> SummaryDb {
    let mut db = SummaryDb::new();
    for name in ["pm_runtime_get", "pm_runtime_get_sync", "pm_runtime_get_noresume"] {
        db.insert(
            PredefinedBuilder::new(name)
                .entry(|e| e.change_arg_field(0, PM_FIELD, 1).ret_any())
                .build(),
        );
    }
    for name in [
        "pm_runtime_put",
        "pm_runtime_put_sync",
        "pm_runtime_put_autosuspend",
        "pm_runtime_put_noidle",
    ] {
        db.insert(
            PredefinedBuilder::new(name)
                .entry(|e| e.change_arg_field(0, PM_FIELD, -1).ret_any())
                .build(),
        );
    }
    db
}

/// Predefined summaries for the Python/C refcount API (Figure 7, bottom),
/// derived from the CPython API reference:
///
/// * `Py_INCREF`/`Py_DECREF` change the object's count directly;
/// * allocating APIs (`Py_BuildValue`, `PyList_New`, `PyInt_FromLong`,
///   `PyDict_New`, `PyString_FromString`, `PyTuple_New`) return a **new
///   reference** on success (two entries: non-null with `+1` on the result,
///   or null with no change);
/// * `PyErr_SetObject` creates new references to both of its arguments;
/// * borrowed-reference getters (`PyList_GetItem`, `PyDict_GetItem`,
///   `PyTuple_GetItem`) and reference-stealing setters (`PyList_SetItem`,
///   `PyTuple_SetItem`) change no counts.
#[must_use]
pub fn python_c_apis() -> SummaryDb {
    let mut db = SummaryDb::new();
    db.insert(
        PredefinedBuilder::new("Py_INCREF")
            .entry(|e| e.change_arg_field(0, RC_FIELD, 1))
            .build(),
    );
    db.insert(
        PredefinedBuilder::new("Py_DECREF")
            .entry(|e| e.change_arg_field(0, RC_FIELD, -1))
            .build(),
    );
    db.insert(
        PredefinedBuilder::new("Py_XDECREF")
            .entry(|e| e.arg_non_null(0).change_arg_field(0, RC_FIELD, -1))
            .entry(|e| {
                let mut e = e;
                e.entry.cons.push(Lit::new(
                    Pred::Eq,
                    Term::var(Var::formal(0)),
                    Term::NULL,
                ));
                e
            })
            .build(),
    );
    for name in [
        "Py_BuildValue",
        "PyList_New",
        "PyInt_FromLong",
        "PyLong_FromLong",
        "PyDict_New",
        "PyTuple_New",
        "PyString_FromString",
    ] {
        db.insert(
            PredefinedBuilder::new(name)
                .entry(|e| e.ret_non_null().change_ret_field(RC_FIELD, 1))
                .entry(|e| e.ret_null())
                .build(),
        );
    }
    db.insert(
        PredefinedBuilder::new("PyErr_SetObject")
            .entry(|e| e.change_arg_field(0, RC_FIELD, 1).change_arg_field(1, RC_FIELD, 1))
            .build(),
    );
    for name in ["PyList_GetItem", "PyDict_GetItem", "PyTuple_GetItem"] {
        db.insert(PredefinedBuilder::new(name).entry(|e| e.ret_any()).build());
    }
    for name in ["PyList_SetItem", "PyTuple_SetItem", "PyErr_Clear"] {
        db.insert(PredefinedBuilder::new(name).entry(|e| e.ret_any()).build());
    }
    db
}

/// The name of the wake-lock counter field used by the Android summaries.
pub const WAKELOCK_FIELD: &str = "wl";

/// Predefined summaries for Android-style wake locks.
///
/// The paper's introduction motivates refcount checking with wake-lock
/// bugs — "a significant root cause of abnormal power consumption on
/// smartphones". A held wake lock keeps the device awake; the counter
/// must return to zero for the device to sleep, so the same two
/// characteristics (§3.1) apply: `wake_lock` increments, `wake_unlock`
/// decrements, and `wake_lock_timeout` behaves like `wake_lock` (the
/// timeout releases it *eventually*, but the explicit count still must
/// balance for prompt sleep).
#[must_use]
pub fn android_wakelock_apis() -> SummaryDb {
    let mut db = SummaryDb::new();
    for name in ["wake_lock", "wake_lock_timeout", "__pm_stay_awake"] {
        db.insert(
            PredefinedBuilder::new(name)
                .entry(|e| e.change_arg_field(0, WAKELOCK_FIELD, 1))
                .build(),
        );
    }
    for name in ["wake_unlock", "__pm_relax"] {
        db.insert(
            PredefinedBuilder::new(name)
                .entry(|e| e.change_arg_field(0, WAKELOCK_FIELD, -1))
                .build(),
        );
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpm_get_always_increments() {
        let db = linux_dpm_apis();
        let get = db.get("pm_runtime_get_sync").unwrap();
        assert_eq!(get.entries.len(), 1);
        let e = &get.entries[0];
        // cons is True: the increment happens regardless of return value.
        assert!(e.cons.is_truth());
        assert_eq!(e.change(&Term::var(Var::formal(0)).field(PM_FIELD)), 1);
    }

    #[test]
    fn dpm_put_decrements() {
        let db = linux_dpm_apis();
        for name in ["pm_runtime_put", "pm_runtime_put_autosuspend"] {
            let put = db.get(name).unwrap();
            assert_eq!(
                put.entries[0].change(&Term::var(Var::formal(0)).field(PM_FIELD)),
                -1
            );
        }
    }

    #[test]
    fn python_allocators_have_two_entries() {
        let db = python_c_apis();
        let alloc = db.get("PyList_New").unwrap();
        assert_eq!(alloc.entries.len(), 2);
        let success = &alloc.entries[0];
        let failure = &alloc.entries[1];
        assert!(success.has_changes());
        assert!(!failure.has_changes());
        // The two entries are mutually exclusive on the return value.
        assert!(!success.cons.and(&failure.cons).is_sat());
    }

    #[test]
    fn borrowed_and_stealing_apis_change_nothing() {
        let db = python_c_apis();
        for name in ["PyList_GetItem", "PyList_SetItem"] {
            assert!(!db.get(name).unwrap().changes_refcounts(), "{name}");
        }
    }

    #[test]
    fn err_setobject_increments_both_args() {
        let db = python_c_apis();
        let e = &db.get("PyErr_SetObject").unwrap().entries[0];
        assert_eq!(e.change(&Term::var(Var::formal(0)).field(RC_FIELD)), 1);
        assert_eq!(e.change(&Term::var(Var::formal(1)).field(RC_FIELD)), 1);
    }

    #[test]
    fn wakelock_apis_shape() {
        let db = android_wakelock_apis();
        let lock = &db.get("wake_lock").unwrap().entries[0];
        assert_eq!(lock.change(&Term::var(Var::formal(0)).field(WAKELOCK_FIELD)), 1);
        let unlock = &db.get("wake_unlock").unwrap().entries[0];
        assert_eq!(unlock.change(&Term::var(Var::formal(0)).field(WAKELOCK_FIELD)), -1);
        assert_eq!(db.refcount_changing_names().count(), 5);
    }

    #[test]
    fn refcount_changing_seed_set() {
        let db = linux_dpm_apis();
        let seeds: Vec<&str> = db.refcount_changing_names().collect();
        assert!(seeds.contains(&"pm_runtime_get"));
        assert_eq!(seeds.len(), 7);
    }
}
