//! The RIDSS1 indexed summary-store container.
//!
//! The JSON form of a [`crate::cache::SummaryCache`] is a tree: loading
//! it parses and materializes *every* entry, even though a warm run only
//! ever touches the entries whose functions it re-analyzes. At corpus
//! scale that cold materialization dominates warm start-up. This module
//! replaces the tree with an **indexed container**: a small header, a
//! sorted offset index, and per-entry checksummed records. Opening a
//! store reads the header and index only; each entry is fetched with a
//! positioned read ([`std::os::unix::fs::FileExt::read_at`]-style, no
//! seeks, no shared cursor) and parsed the first time a probe actually
//! hits it. A daemon restore or a warm `--cache` load therefore costs
//! O(index) + O(entries hit), not O(entries stored).
//!
//! ## Container format
//!
//! All integers little-endian:
//!
//! ```text
//! "RIDSS1\n\0"                      8-byte magic/version
//! u32   schema length, schema bytes ([`crate::cache::CACHE_SCHEMA`])
//! u32   entry count
//! u64   index length in bytes
//! u128  FNV-1a-128 checksum of the index region
//! index region, per entry (sorted by function name, bytewise):
//!   u32   name length, name bytes (UTF-8)
//!   u128  content key (the merkle comp key the entry was computed under)
//!   u64   payload offset (absolute, from file start)
//!   u64   payload length
//!   u128  FNV-1a-128 checksum of the payload
//! payload region: concatenated per-entry records
//!   (each a JSON-serialized [`CacheEntry`], the same object shape as
//!    one value of the legacy JSON map)
//! ```
//!
//! The index checksum is verified at open; each payload checksum is
//! verified at first read. A torn or bit-flipped entry fails its own
//! probe loudly without poisoning the rest of the store.
//!
//! ## Pass-through writes
//!
//! Writing a store merges the resident (freshly computed) entries with
//! the unshadowed entries of the backing store being replaced — and the
//! latter are copied as **raw verified bytes**, never parsed. A warm run
//! that recomputes 3 functions out of 12k re-encodes 3 entries and
//! `memcpy`s the rest.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::cache::{CacheEntry, Fnv128};

/// Version header of a RIDSS1 container; bump on layout changes.
pub const STORE_MAGIC: &[u8; 8] = b"RIDSS1\n\0";

/// One index record: everything needed to locate, validate, and key one
/// entry without touching its payload.
#[derive(Clone, Debug)]
struct IndexEntry {
    name: String,
    key: u128,
    offset: u64,
    len: u64,
    checksum: u128,
}

/// The byte source behind a store: an open file (positioned reads) or a
/// resident buffer (e.g. a snapshot section already in memory).
#[derive(Debug)]
enum Backing {
    File(fs::File),
    Mem(Vec<u8>),
}

impl Backing {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        match self {
            Backing::File(file) => std::os::unix::fs::FileExt::read_exact_at(file, buf, offset),
            Backing::Mem(bytes) => {
                let start = usize::try_from(offset)
                    .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "offset overflow"))?;
                let end = start.checked_add(buf.len()).filter(|&e| e <= bytes.len()).ok_or_else(
                    || io::Error::new(io::ErrorKind::UnexpectedEof, "record past end of store"),
                )?;
                buf.copy_from_slice(&bytes[start..end]);
                Ok(())
            }
        }
    }
}

/// An opened RIDSS1 container: the parsed index plus a byte source for
/// on-demand payload reads. Cheap to keep resident — the payloads stay
/// on disk (or in the snapshot section's bytes) until probed.
#[derive(Debug)]
pub struct SummaryStore {
    schema: String,
    backing: Backing,
    /// Sorted by name; probed by binary search.
    index: Vec<IndexEntry>,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("summary store: {msg}"))
}

/// A little-endian cursor over the header/index bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| bad("truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u128(&mut self) -> io::Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("non-UTF-8 name"))
    }
}

/// Byte length of the fixed pre-index header once the schema string is
/// known: magic + schema (length-prefixed) + count + index length +
/// index checksum.
fn header_len(schema: &str) -> u64 {
    (8 + 4 + schema.len() + 4 + 8 + 16) as u64
}

impl SummaryStore {
    /// Opens a store file, reading and verifying only the header and
    /// index. Payloads stay on disk until [`SummaryStore::read_entry`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error on unreadable files, foreign magic, or a
    /// corrupt index.
    pub fn open(path: &Path) -> io::Result<SummaryStore> {
        let file = fs::File::open(path)?;
        SummaryStore::parse(Backing::File(file))
    }

    /// Opens a store over resident bytes (e.g. a snapshot section),
    /// verifying the header and index. Entry payloads are decoded only
    /// when probed.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on foreign magic or a corrupt index.
    pub fn from_bytes(bytes: Vec<u8>) -> io::Result<SummaryStore> {
        SummaryStore::parse(Backing::Mem(bytes))
    }

    fn parse(backing: Backing) -> io::Result<SummaryStore> {
        let mut magic = [0u8; 8];
        backing.read_exact_at(&mut magic, 0).map_err(|_| bad("truncated header"))?;
        if &magic != STORE_MAGIC {
            return Err(bad("bad magic (not a RIDSS1 container)"));
        }
        let mut len4 = [0u8; 4];
        backing.read_exact_at(&mut len4, 8).map_err(|_| bad("truncated header"))?;
        let schema_len = u32::from_le_bytes(len4) as usize;
        if schema_len > 4096 {
            return Err(bad("implausible schema length"));
        }
        // Schema + count + index length + index checksum in one read.
        let mut rest = vec![0u8; schema_len + 4 + 8 + 16];
        backing.read_exact_at(&mut rest, 12).map_err(|_| bad("truncated header"))?;
        let mut c = Cursor { bytes: &rest, pos: 0 };
        let schema = String::from_utf8(c.take(schema_len)?.to_vec())
            .map_err(|_| bad("non-UTF-8 schema"))?;
        let count = c.u32()? as usize;
        let index_len = c.u64()?;
        let index_checksum = c.u128()?;

        let mut index_bytes =
            vec![
                0u8;
                usize::try_from(index_len).map_err(|_| bad("implausible index length"))?
            ];
        backing
            .read_exact_at(&mut index_bytes, header_len(&schema))
            .map_err(|_| bad("truncated index"))?;
        let mut h = Fnv128::new();
        h.write(&index_bytes);
        if h.finish() != index_checksum {
            return Err(bad("index checksum mismatch"));
        }

        let mut index = Vec::with_capacity(count);
        let mut c = Cursor { bytes: &index_bytes, pos: 0 };
        for _ in 0..count {
            let name = c.str()?;
            let key = c.u128()?;
            let offset = c.u64()?;
            let len = c.u64()?;
            let checksum = c.u128()?;
            if let Some(prev) = index.last() {
                let prev: &IndexEntry = prev;
                if prev.name.as_bytes() >= name.as_bytes() {
                    return Err(bad("index not sorted by name"));
                }
            }
            index.push(IndexEntry { name, key, offset, len, checksum });
        }
        if c.pos != index_bytes.len() {
            return Err(bad("trailing bytes in index"));
        }
        Ok(SummaryStore { schema, backing, index })
    }

    /// The schema tag the store was written under.
    #[must_use]
    pub fn schema(&self) -> &str {
        &self.schema
    }

    /// Number of entries in the store.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Entry names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> + '_ {
        self.index.iter().map(|e| e.name.as_str())
    }

    /// The content key recorded for `name`, if present. Index-only: no
    /// payload is touched.
    #[must_use]
    pub fn key_of(&self, name: &str) -> Option<u128> {
        self.position(name).map(|i| self.index[i].key)
    }

    fn position(&self, name: &str) -> Option<usize> {
        self.index.binary_search_by(|e| e.name.as_str().cmp(name)).ok()
    }

    /// Reads, verifies, and parses the entry for `name`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the payload cannot be read, fails its
    /// checksum, or does not parse.
    pub fn read_entry(&self, name: &str) -> io::Result<Option<CacheEntry>> {
        let Some(i) = self.position(name) else { return Ok(None) };
        let (_, payload) = self.read_raw(i)?;
        let entry: CacheEntry = serde_json::from_str(
            std::str::from_utf8(&payload).map_err(|_| bad("non-UTF-8 payload"))?,
        )
        .map_err(|e| bad(&format!("entry `{name}` does not parse: {e}")))?;
        Ok(Some(entry))
    }

    /// Reads and checksum-verifies the raw payload of index slot `i`,
    /// without parsing. The pass-through write path copies these bytes
    /// verbatim.
    fn read_raw(&self, i: usize) -> io::Result<(&IndexEntry, Vec<u8>)> {
        let entry = &self.index[i];
        let len = usize::try_from(entry.len).map_err(|_| bad("implausible entry length"))?;
        let mut payload = vec![0u8; len];
        self.backing
            .read_exact_at(&mut payload, entry.offset)
            .map_err(|_| bad("truncated entry payload"))?;
        let mut h = Fnv128::new();
        h.write(&payload);
        if h.finish() != entry.checksum {
            return Err(bad(&format!("entry `{}` checksum mismatch", entry.name)));
        }
        Ok((entry, payload))
    }
}

/// Serializes a store: `resident` entries (freshly computed or
/// materialized this process) merged with every `backing` entry whose
/// name is not shadowed by a resident one. Backing payloads are copied
/// as verified raw bytes — they are never parsed.
///
/// # Errors
///
/// Returns an I/O error if a resident entry cannot be serialized, a
/// backing payload fails verification, or an entry key is malformed.
pub fn write_store_bytes(
    schema: &str,
    resident: &BTreeMap<String, CacheEntry>,
    backing: Option<&SummaryStore>,
) -> io::Result<Vec<u8>> {
    // Assemble (name, key, payload) in sorted order: a classic two-way
    // merge of the resident map (already sorted) and the backing index
    // (sorted by construction), resident winning ties.
    let mut records: Vec<(&str, u128, Vec<u8>)> = Vec::new();
    let mut resident_iter = resident.iter().peekable();
    let mut backing_slots = match backing {
        Some(store) => (0..store.index.len()).peekable(),
        None => (0..0).peekable(),
    };
    loop {
        let from_resident = match (resident_iter.peek(), backing_slots.peek()) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((rname, _)), Some(&slot)) => {
                let bname = &backing.expect("slot implies backing").index[slot].name;
                if rname.as_str() == bname.as_str() {
                    backing_slots.next(); // shadowed: resident wins
                }
                rname.as_str() <= bname.as_str()
            }
        };
        if from_resident {
            let (name, entry) = resident_iter.next().expect("peeked");
            let key = crate::cache::parse_hex_key(&entry.key)
                .ok_or_else(|| bad(&format!("entry `{name}` has a malformed key")))?;
            let payload = serde_json::to_string(entry).map_err(|e| bad(&e.to_string()))?;
            records.push((name, key, payload.into_bytes()));
        } else {
            let slot = backing_slots.next().expect("peeked");
            let store = backing.expect("slot implies backing");
            let (entry, payload) = store.read_raw(slot)?;
            records.push((entry.name.as_str(), entry.key, payload));
        }
    }

    Ok(assemble_store(schema, &records))
}

/// Unions several stores into one container's bytes, first-wins by
/// name (earlier `parts` shadow later ones). Every payload is copied as
/// verified raw bytes — nothing is parsed — so merging P shard delta
/// stores costs O(total index) + one pass over the payload bytes. All
/// parts must carry `schema`; mixing schemas is a hard error, not a
/// silent cold-cache.
///
/// # Errors
///
/// Returns an I/O error on a schema mismatch or if any payload fails
/// its checksum.
pub fn union_store_bytes(schema: &str, parts: &[&SummaryStore]) -> io::Result<Vec<u8>> {
    let mut chosen: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (p, store) in parts.iter().enumerate() {
        if store.schema() != schema {
            return Err(bad(&format!(
                "union part {p} has schema `{}`, expected `{schema}`",
                store.schema()
            )));
        }
        for (slot, entry) in store.index.iter().enumerate() {
            chosen.entry(entry.name.as_str()).or_insert((p, slot));
        }
    }
    let mut records: Vec<(&str, u128, Vec<u8>)> = Vec::with_capacity(chosen.len());
    for (name, (p, slot)) in &chosen {
        let (entry, payload) = parts[*p].read_raw(*slot)?;
        records.push((name, entry.key, payload));
    }
    Ok(assemble_store(schema, &records))
}

/// Serializes sorted `(name, key, payload)` records into RIDSS1
/// container bytes: header, checksummed index, concatenated payloads.
fn assemble_store(schema: &str, records: &[(&str, u128, Vec<u8>)]) -> Vec<u8> {
    // Index region.
    let mut index = Vec::new();
    let mut offset = header_len(schema);
    // First pass sizes the index so payload offsets are absolute.
    for (name, _, payload) in records {
        offset += (4 + name.len() + 16 + 8 + 8 + 16) as u64;
        let _ = payload;
    }
    let mut payload_at = offset;
    for (name, key, payload) in records {
        index.extend_from_slice(&u32::try_from(name.len()).expect("name length").to_le_bytes());
        index.extend_from_slice(name.as_bytes());
        index.extend_from_slice(&key.to_le_bytes());
        index.extend_from_slice(&payload_at.to_le_bytes());
        index.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let mut h = Fnv128::new();
        h.write(payload);
        index.extend_from_slice(&h.finish().to_le_bytes());
        payload_at += payload.len() as u64;
    }

    let mut out = Vec::with_capacity(
        usize::try_from(payload_at).unwrap_or(index.len()) + STORE_MAGIC.len(),
    );
    out.extend_from_slice(STORE_MAGIC);
    out.extend_from_slice(&u32::try_from(schema.len()).expect("schema length").to_le_bytes());
    out.extend_from_slice(schema.as_bytes());
    out.extend_from_slice(&u32::try_from(records.len()).expect("entry count").to_le_bytes());
    out.extend_from_slice(&(index.len() as u64).to_le_bytes());
    let mut h = Fnv128::new();
    h.write(&index);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out.extend_from_slice(&index);
    for (_, _, payload) in records {
        out.extend_from_slice(payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::hex_key;
    use crate::summary::Summary;

    fn entry(func: &str, key: u128) -> CacheEntry {
        CacheEntry { key: hex_key(key), summary: Summary::default_for(func), reports: Vec::new() }
    }

    fn store_with(entries: &[(&str, u128)]) -> SummaryStore {
        let resident: BTreeMap<String, CacheEntry> =
            entries.iter().map(|&(n, k)| (n.to_owned(), entry(n, k))).collect();
        let bytes = write_store_bytes("test-schema/v1", &resident, None).unwrap();
        SummaryStore::from_bytes(bytes).unwrap()
    }

    #[test]
    fn round_trips_entries_on_demand() {
        let store = store_with(&[("alpha", 1), ("beta", 2), ("gamma", 3)]);
        assert_eq!(store.len(), 3);
        assert_eq!(store.schema(), "test-schema/v1");
        assert_eq!(store.key_of("beta"), Some(2));
        assert_eq!(store.key_of("delta"), None);
        let e = store.read_entry("gamma").unwrap().unwrap();
        assert_eq!(e.key, hex_key(3));
        assert_eq!(e.summary.func, "gamma");
        assert!(store.read_entry("nope").unwrap().is_none());
    }

    #[test]
    fn pass_through_merges_and_shadows() {
        let old = store_with(&[("a", 1), ("b", 2), ("c", 3)]);
        let mut resident = BTreeMap::new();
        resident.insert("b".to_owned(), entry("b", 20)); // shadows
        resident.insert("d".to_owned(), entry("d", 4)); // new
        let bytes = write_store_bytes("test-schema/v1", &resident, Some(&old)).unwrap();
        let merged = SummaryStore::from_bytes(bytes).unwrap();
        assert_eq!(merged.names().collect::<Vec<_>>(), vec!["a", "b", "c", "d"]);
        assert_eq!(merged.key_of("b"), Some(20));
        assert_eq!(merged.key_of("a"), Some(1));
        let b = merged.read_entry("b").unwrap().unwrap();
        assert_eq!(b.key, hex_key(20));
    }

    #[test]
    fn corrupt_index_fails_open() {
        let store = store_with(&[("a", 1)]);
        let Backing::Mem(mut bytes) = store.backing else { panic!("mem-backed") };
        // Flip a byte inside the index region (just past the header).
        let at = usize::try_from(header_len("test-schema/v1")).unwrap() + 8;
        bytes[at] ^= 0xff;
        assert!(SummaryStore::from_bytes(bytes).is_err());
    }

    #[test]
    fn corrupt_payload_fails_only_that_entry() {
        let resident: BTreeMap<String, CacheEntry> =
            [("a", 1u128), ("b", 2)].iter().map(|&(n, k)| (n.to_owned(), entry(n, k))).collect();
        let bytes = write_store_bytes("s", &resident, None).unwrap();
        // Corrupt the final byte (inside entry b's payload).
        let mut bytes = bytes;
        let at = bytes.len() - 2;
        bytes[at] ^= 0xff;
        let store = SummaryStore::from_bytes(bytes).unwrap();
        assert!(store.read_entry("a").unwrap().is_some());
        assert!(store.read_entry("b").is_err());
    }

    #[test]
    fn union_is_first_wins_and_raw() {
        let a = store_with(&[("a", 1), ("b", 2)]);
        let b = store_with(&[("b", 20), ("c", 3)]);
        let c = store_with(&[("c", 30), ("d", 4)]);
        let bytes = union_store_bytes("test-schema/v1", &[&a, &b, &c]).unwrap();
        let merged = SummaryStore::from_bytes(bytes).unwrap();
        assert_eq!(merged.names().collect::<Vec<_>>(), vec!["a", "b", "c", "d"]);
        assert_eq!(merged.key_of("b"), Some(2), "first part wins");
        assert_eq!(merged.key_of("c"), Some(3), "first part wins");
        assert_eq!(merged.read_entry("d").unwrap().unwrap().summary.func, "d");
        // Union of one part round-trips to byte-identical container.
        let solo = union_store_bytes("test-schema/v1", &[&a]).unwrap();
        let resident: BTreeMap<String, CacheEntry> =
            [("a", 1u128), ("b", 2)].iter().map(|&(n, k)| (n.to_owned(), entry(n, k))).collect();
        assert_eq!(solo, write_store_bytes("test-schema/v1", &resident, None).unwrap());
        // Mixed schemas are a hard error.
        let foreign = {
            let resident: BTreeMap<String, CacheEntry> =
                [("z", 9u128)].iter().map(|&(n, k)| (n.to_owned(), entry(n, k))).collect();
            SummaryStore::from_bytes(write_store_bytes("other/v9", &resident, None).unwrap())
                .unwrap()
        };
        assert!(union_store_bytes("test-schema/v1", &[&a, &foreign]).is_err());
    }

    #[test]
    fn rejects_foreign_magic() {
        assert!(SummaryStore::from_bytes(b"NOTASTORE".to_vec()).is_err());
        assert!(SummaryStore::from_bytes(Vec::new()).is_err());
    }
}
