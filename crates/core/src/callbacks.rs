//! Callback-contract checking — the paper's stated future work (§6.4/§7).
//!
//! Figure 10's bug escapes RID because `arizona_irq_thread` is internally
//! consistent: its paths are distinguished by the return value
//! (`IRQ_NONE` vs `IRQ_HANDLED`). The imbalance only matters because the
//! function is *called through a function pointer* by a dispatcher that
//! never balances refcounts based on the return code. The paper proposes
//! extending the call graph through function pointers to catch this
//! class.
//!
//! This module implements that extension as a *callback contract*: RIL
//! programs pass handlers to registration APIs as `@name` references
//! ([`rid_ir::Operand::FuncRef`]); a [`CallbackModel`] names the
//! registration APIs. Because a registered callback's caller is the
//! runtime dispatcher — which cannot inspect the return value to decide
//! whether to release a reference — two callback paths are
//! indistinguishable *even when their return values differ*. The check
//! therefore re-runs IPP detection on callback functions with all
//! conditions on the return slot `[0]` removed, which is exactly what
//! flags Figure 10.
//!
//! The extension is off by default ([`crate::AnalysisOptions`]'s
//! `check_callbacks`), preserving the paper's baseline behaviour.

use std::collections::{BTreeSet, HashMap};

use rid_ir::Program;
use rid_solver::{Conj, SatOptions, VarKind};

use crate::exec::{summarize_paths, PathEntry};
use crate::ipp::{check_ipps, IppReport};
use crate::paths::PathLimits;
use crate::summary::SummaryDb;

/// Which APIs register callbacks, and which argument is the handler.
///
/// # Examples
///
/// ```
/// use rid_core::callbacks::CallbackModel;
///
/// let mut model = CallbackModel::linux_default();
/// model.add_registrar("my_register_handler", 0);
/// assert_eq!(model.handler_arg("request_irq"), Some(1));
/// assert_eq!(model.handler_arg("my_register_handler"), Some(0));
/// assert_eq!(model.handler_arg("kmalloc"), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CallbackModel {
    registrars: HashMap<String, usize>,
}

impl CallbackModel {
    /// An empty model (no registration APIs known).
    #[must_use]
    pub fn new() -> CallbackModel {
        CallbackModel::default()
    }

    /// The common Linux registration APIs:
    /// `request_irq(irq, handler, data)`,
    /// `request_threaded_irq(irq, handler, thread_fn, data)` (both handler
    /// slots), `devm_request_irq(dev, irq, handler, data)`,
    /// `register_callback(owner, handler)`.
    #[must_use]
    pub fn linux_default() -> CallbackModel {
        let mut model = CallbackModel::new();
        model.add_registrar("request_irq", 1);
        model.add_registrar("request_threaded_irq", 1);
        model.add_registrar("devm_request_irq", 2);
        model.add_registrar("register_callback", 1);
        model
    }

    /// Declares `api`'s argument `arg_index` to be a callback handler.
    pub fn add_registrar(&mut self, api: impl Into<String>, arg_index: usize) -> &mut Self {
        self.registrars.insert(api.into(), arg_index);
        self
    }

    /// The handler argument index of `api`, if it is a registrar.
    #[must_use]
    pub fn handler_arg(&self, api: &str) -> Option<usize> {
        self.registrars.get(api).copied()
    }
}

/// Collects the names of functions registered as callbacks anywhere in
/// the program.
///
/// A conservative widening: *any* `@name` reference passed to a known
/// registrar at its handler position — or passed anywhere when the callee
/// is a registrar (handlers are sometimes forwarded through wrappers).
#[must_use]
pub fn collect_callbacks(program: &Program, model: &CallbackModel) -> BTreeSet<String> {
    let mut callbacks = BTreeSet::new();
    for func in program.functions() {
        for (_, inst) in func.insts() {
            let (callee, args) = match inst {
                rid_ir::Inst::Call { callee, args } => (callee.as_str(), args),
                rid_ir::Inst::Assign {
                    rvalue: rid_ir::Rvalue::Call { callee, args }, ..
                } => (callee.as_str(), args),
                _ => continue,
            };
            let Some(handler_idx) = model.handler_arg(callee) else { continue };
            // Exact position first; fall back to any func-ref argument.
            if let Some(name) = args.get(handler_idx).and_then(rid_ir::Operand::as_func_ref)
            {
                callbacks.insert(name.to_owned());
            } else {
                for arg in args {
                    if let Some(name) = arg.as_func_ref() {
                        callbacks.insert(name.to_owned());
                    }
                }
            }
        }
    }
    callbacks
}

/// Removes every literal mentioning the return slot `[0]` from a
/// constraint: the dispatcher calling a callback cannot act on its return
/// value, so return-value distinctions do not separate paths.
#[must_use]
pub fn strip_ret_conditions(cons: &Conj) -> Conj {
    let mut out = Conj::truth();
    if cons.is_trivially_false() {
        return Conj::unsat();
    }
    let mut vars = Vec::new();
    for lit in cons.lits() {
        vars.clear();
        lit.collect_vars(&mut vars);
        if vars.iter().any(|v| v.kind == VarKind::Ret) {
            continue;
        }
        out.push(lit.clone());
    }
    out
}

/// Runs the relaxed (return-value-blind) IPP check on one callback
/// function. Reports are marked with [`IppReport::callback`].
#[must_use]
pub fn check_callback_function(
    func: &rid_ir::Function,
    db: &SummaryDb,
    limits: &PathLimits,
    sat: SatOptions,
) -> Vec<IppReport> {
    let outcome = summarize_paths(func, db, limits, sat);
    let relaxed: Vec<PathEntry> = outcome
        .path_entries
        .into_iter()
        .map(|mut pe| {
            pe.entry.cons = strip_ret_conditions(&pe.entry.cons);
            // Changes keyed on the returned object still make sense to
            // compare (the dispatcher drops the value, so a +1 on it is a
            // leak either way); leave `changes` untouched.
            pe
        })
        .collect();
    let mut ipp = check_ipps(func.name(), &relaxed, sat);
    for report in &mut ipp.reports {
        report.callback = true;
    }
    ipp.reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::linux_dpm_apis;
    use rid_frontend::parse_program;

    const ARIZONA: &str = r#"module arizona;
        fn arizona_irq_thread(irq, data) {
            let ret = pm_runtime_get_sync(data.dev);
            if (ret < 0) {
                dev_err(data);
                return 0;
            }
            handle(data);
            pm_runtime_put(data.dev);
            return 1;
        }
        fn arizona_probe(dev) {
            request_irq(dev.irq, @arizona_irq_thread, dev);
            return 0;
        }"#;

    #[test]
    fn callbacks_are_collected() {
        let program = parse_program([ARIZONA]).unwrap();
        let callbacks = collect_callbacks(&program, &CallbackModel::linux_default());
        assert!(callbacks.contains("arizona_irq_thread"));
        assert_eq!(callbacks.len(), 1);
    }

    #[test]
    fn empty_model_collects_nothing() {
        let program = parse_program([ARIZONA]).unwrap();
        assert!(collect_callbacks(&program, &CallbackModel::new()).is_empty());
    }

    #[test]
    fn handler_forwarded_at_other_position_still_found() {
        let src = r#"module m;
            fn handler(irq, data) { return 0; }
            fn setup(dev) {
                request_irq(@handler, dev.irq, dev);
                return 0;
            }"#;
        let program = parse_program([src]).unwrap();
        let callbacks = collect_callbacks(&program, &CallbackModel::linux_default());
        assert!(callbacks.contains("handler"));
    }

    #[test]
    fn figure10_found_by_relaxed_check() {
        let program = parse_program([ARIZONA]).unwrap();
        let func = program.function("arizona_irq_thread").unwrap();
        let reports = check_callback_function(
            func,
            &linux_dpm_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert!(reports[0].callback);
        assert_eq!(reports[0].refcount.to_string(), "[arg1].dev.pm");
    }

    #[test]
    fn balanced_callback_stays_clean() {
        let src = r#"module m;
            fn good_irq(irq, data) {
                let ret = pm_runtime_get_sync(data.dev);
                if (ret < 0) {
                    pm_runtime_put(data.dev);
                    return 0;
                }
                handle(data);
                pm_runtime_put(data.dev);
                return 1;
            }"#;
        let program = parse_program([src]).unwrap();
        let func = program.function("good_irq").unwrap();
        let reports = check_callback_function(
            func,
            &linux_dpm_apis(),
            &PathLimits::default(),
            SatOptions::default(),
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn strip_ret_conditions_behaviour() {
        use rid_ir::Pred;
        use rid_solver::{Lit, Term, Var};
        let cons = Conj::from_lits([
            Lit::new(Pred::Eq, Term::var(Var::ret()), Term::int(0)),
            Lit::new(Pred::Ne, Term::var(Var::formal(0)), Term::NULL),
        ]);
        let stripped = strip_ret_conditions(&cons);
        assert_eq!(stripped.lits().len(), 1);
        assert!(strip_ret_conditions(&Conj::unsat()).is_trivially_false());
    }
}
