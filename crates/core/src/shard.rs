//! Multi-process sharded analysis over the RIDSS1 summary store.
//!
//! `rid analyze --processes P` splits one whole-program analysis across
//! `P` **worker processes** coordinated by the parent. The unit of
//! distribution is the call-graph SCC component (the same unit the
//! in-process scheduler uses, see [`crate::driver`]); the only channel
//! between processes is the persistent summary store
//! ([`crate::store`]) — no shared memory, no sockets, no pickled
//! executor state.
//!
//! ## Protocol
//!
//! 1. The coordinator parses the program, classifies it, condenses the
//!    call graph, and computes **wavefront levels** over the active
//!    components: `level(C) = 1 + max(level of C's active direct callee
//!    components)`. Components in one level never depend on each other,
//!    so a level can be analyzed by disjoint processes concurrently.
//! 2. Within a level, active components are assigned round-robin (by
//!    ascending component index) to `P` shards. Each shard worker gets a
//!    [`ShardTask`] file: the source paths, the predefined summary DB,
//!    primitive-typed analysis options, the fault plan, its assigned
//!    (`emit`) components, their transitive active-callee closure
//!    (`analyze`), and the store written by previous levels.
//! 3. A worker re-parses the program (condensation is deterministic, so
//!    component indices agree with the coordinator's), runs the masked
//!    driver ([`crate::driver`]'s `CompMask`), and writes back a **delta
//!    store** holding exactly the entries it computed fresh, plus a
//!    [`ShardOutput`] with the reports, degradations, statistics, and
//!    summaries of the components it owns. Closure components are
//!    answered from the store (or deterministically recomputed when the
//!    store has no entry — degraded summaries are never cached) and
//!    their outputs are discarded: the owning shard already reported
//!    them.
//! 4. After a level, the coordinator unions the delta stores into the
//!    running store ([`crate::store::union_store_bytes`], raw byte
//!    pass-through; deltas shadow older entries) and hands the union to
//!    the next level.
//!
//! ## Determinism
//!
//! The merged result is **byte-identical** to a sequential run: every
//! active component is owned by exactly one `(level, shard)`, fault
//! selection hashes only the seed and the function name (identical in
//! every process), degraded summaries are never cached (so a recompute
//! under the same plan degrades identically), and the final report sort
//! is the same `(function, refcount, path_a, path_b)` order the driver
//! uses. The differential suite pins this across process counts, store
//! temperature, and fault plans.
//!
//! Workers are re-executions of the current binary: binaries that may
//! coordinate (the CLI, the perf/scaling benches) call
//! [`maybe_run_worker`] first thing in `main`, which diverts the process
//! into worker mode when the magic argv token is present.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::budget::{Budget, Degradation};
use crate::cache::{SummaryCache, CACHE_SCHEMA};
use crate::callgraph::{CallGraph, Condensation};
use crate::classify::{classify, Classification};
use crate::driver::{
    analyze_program_masked, callback_pass, AnalysisOptions, AnalysisResult, AnalysisStats,
    CompMask,
};
use crate::exec::ExecMode;
use crate::fault::FaultPlan;
use crate::ipp::IppReport;
use crate::persist::{atomic_write, load_cache, load_db, save_db};
use crate::store::{union_store_bytes, write_store_bytes, SummaryStore};
use crate::summary::{Summary, SummaryDb};

/// Magic first argument that turns a re-exec of the current binary into
/// a shard worker. Namespaced so it can never collide with a real
/// subcommand or file name.
pub const WORKER_ARG: &str = "__rid-shard-worker";

/// Environment variable naming the file a shard worker flushes its
/// trace JSONL into; set (together with [`TRACE_ID_ENV`]) by a traced
/// coordinator, absent otherwise.
pub const TRACE_FILE_ENV: &str = "RID_TRACE_FILE";

/// Environment variable carrying the coordinating run's trace id as 16
/// hex digits; the worker echoes it in its flush file's header line so
/// the coordinator can reject artifacts from a different run.
pub const TRACE_ID_ENV: &str = "RID_TRACE_ID";

fn invalid(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("shard: {msg}"))
}

/// [`AnalysisOptions`] flattened to serializable primitives for the task
/// file. Mirrors exactly the fields a worker needs; `check_callbacks`
/// and `refute` are deliberately absent — both are coordinator-only
/// passes, run once over the merged result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskOptions {
    /// [`crate::paths::PathLimits::max_paths`].
    pub max_paths: usize,
    /// [`crate::paths::PathLimits::max_block_visits`].
    pub max_block_visits: u32,
    /// [`crate::paths::PathLimits::max_subcases`].
    pub max_subcases: usize,
    /// [`crate::paths::PathLimits::max_entries`].
    pub max_entries: usize,
    /// [`rid_solver::SatOptions::max_splits`].
    pub sat_max_splits: u32,
    /// [`AnalysisOptions::selective`].
    pub selective: bool,
    /// In-process worker threads per shard ([`AnalysisOptions::threads`]).
    pub threads: usize,
    /// [`AnalysisOptions::steal_batch`].
    pub steal_batch: usize,
    /// [`AnalysisOptions::exec_mode`] as `auto`/`tree`/`per-path`.
    pub exec_mode: String,
    /// Per-function deadline in milliseconds, if any.
    pub func_deadline_ms: Option<u64>,
    /// Global deadline in milliseconds, if any (re-armed per shard — a
    /// coordinator-level wall budget is advisory across processes).
    pub global_deadline_ms: Option<u64>,
    /// Solver fuel per function, if any.
    pub solver_fuel: Option<u64>,
}

impl TaskOptions {
    /// Flattens driver options for the wire.
    #[must_use]
    pub fn of(options: &AnalysisOptions) -> TaskOptions {
        TaskOptions {
            max_paths: options.limits.max_paths,
            max_block_visits: options.limits.max_block_visits,
            max_subcases: options.limits.max_subcases,
            max_entries: options.limits.max_entries,
            sat_max_splits: options.sat.max_splits,
            selective: options.selective,
            threads: options.threads,
            steal_batch: options.steal_batch,
            exec_mode: match options.exec_mode {
                ExecMode::Auto => "auto",
                ExecMode::Tree => "tree",
                ExecMode::PerPath => "per-path",
            }
            .to_owned(),
            func_deadline_ms: options.budget.func_deadline.map(|d| d.as_millis() as u64),
            global_deadline_ms: options.budget.global_deadline.map(|d| d.as_millis() as u64),
            solver_fuel: options.budget.solver_fuel,
        }
    }

    /// Rebuilds driver options in the worker. The fields round-trip
    /// exactly, so the worker's cache salt matches the coordinator's.
    pub fn to_options(&self) -> io::Result<AnalysisOptions> {
        let exec_mode = match self.exec_mode.as_str() {
            "auto" => ExecMode::Auto,
            "tree" => ExecMode::Tree,
            "per-path" => ExecMode::PerPath,
            other => return Err(invalid(format_args!("unknown exec mode `{other}`"))),
        };
        let ms = std::time::Duration::from_millis;
        Ok(AnalysisOptions {
            limits: crate::paths::PathLimits {
                max_paths: self.max_paths,
                max_block_visits: self.max_block_visits,
                max_subcases: self.max_subcases,
                max_entries: self.max_entries,
            },
            sat: rid_solver::SatOptions { max_splits: self.sat_max_splits },
            selective: self.selective,
            threads: self.threads,
            check_callbacks: false,
            budget: Budget {
                func_deadline: self.func_deadline_ms.map(ms),
                global_deadline: self.global_deadline_ms.map(ms),
                solver_fuel: self.solver_fuel,
            },
            exec_mode,
            steal_batch: self.steal_batch,
            refute: false,
        })
    }
}

/// Everything one shard worker needs, written as JSON next to the other
/// coordination files. All paths are absolute.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardTask {
    /// Source files, in program (link) order.
    pub sources: Vec<String>,
    /// Path to the predefined summary DB (written with
    /// [`crate::persist::save_db`]).
    pub predefined: String,
    /// Analysis options.
    pub options: TaskOptions,
    /// Fault plan (selection is name-deterministic, so the same plan
    /// faults the same functions in every process).
    pub faults: FaultPlan,
    /// Components to process: `emit_comps` plus their transitive
    /// active-callee closure.
    pub analyze_comps: Vec<usize>,
    /// Components this shard owns the outputs of.
    pub emit_comps: Vec<usize>,
    /// RIDSS1 store holding every entry earlier levels computed (absent
    /// on the cold first level).
    pub store_in: Option<String>,
    /// Where to write this shard's delta store (fresh entries only).
    pub store_out: String,
    /// Where to write the [`ShardOutput`] JSON.
    pub output: String,
}

/// What a shard worker reports back for the components it owns.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ShardOutput {
    /// IPP reports of owned components (driver-sorted).
    pub reports: Vec<IppReport>,
    /// Degradation records of owned components.
    pub degraded: BTreeMap<String, Degradation>,
    /// This shard's statistics (owned components only; the coordinator
    /// absorbs them and then overrides the whole-program fields).
    pub stats: AnalysisStats,
    /// Summaries of the owned components' analyzed functions.
    pub summaries: Vec<Summary>,
}

/// Diverts the process into shard-worker mode when argv carries
/// [`WORKER_ARG`]. Call first thing in `main` of any binary that may act
/// as a coordinator (the `rid` CLI, the perf/scaling benches) — workers
/// are re-execs of [`std::env::current_exe`]. Returns normally when the
/// token is absent; otherwise runs the task and **exits the process**
/// (0 on success, 102 on failure).
pub fn maybe_run_worker() {
    let mut argv = std::env::args();
    let _ = argv.next();
    if argv.next().as_deref() != Some(WORKER_ARG) {
        return;
    }
    // A traced coordinator asks its workers to trace too: the env pair
    // names the per-shard flush file and the shared trace id, so the
    // worker's spans stitch back into the coordinator's timeline
    // instead of being silently dropped at `exit()`.
    let trace_file = std::env::var_os(TRACE_FILE_ENV).map(PathBuf::from);
    if trace_file.is_some() {
        rid_obs::enable(rid_obs::trace::DEFAULT_CAPACITY);
    }
    let code = match argv.next() {
        Some(task_path) => match run_worker(Path::new(&task_path)) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("shard worker: {e}");
                102
            }
        },
        None => {
            eprintln!("shard worker: missing task path");
            102
        }
    };
    if let Some(path) = trace_file {
        flush_worker_trace(&path);
    }
    std::process::exit(code);
}

/// Drains this worker process's span rings into its `.trace.jsonl`
/// flush file, prefixed by a header line echoing the coordinator's
/// trace id. Runs on **both** exit paths (success and failure) — a
/// failed shard's spans are exactly the ones worth reading.
fn flush_worker_trace(path: &Path) {
    // Span-loss tripwire: every thread that recorded events must have
    // flushed by now (driver workers flush at scope exit; this call
    // flushes the main thread and debug-asserts the census balances).
    rid_obs::trace::assert_all_flushed();
    let trace = rid_obs::drain();
    let mut out = String::new();
    if let Ok(id) = std::env::var(TRACE_ID_ENV) {
        out.push_str(&format!("{{\"trace_id\":\"{id}\"}}\n"));
    }
    out.push_str(&trace.to_jsonl());
    if let Err(e) = atomic_write(path, out.as_bytes()) {
        eprintln!("shard worker: trace write failed: {e}");
    }
}

/// Executes one [`ShardTask`]: masked analysis, delta-store write-back,
/// and the [`ShardOutput`] report.
///
/// # Errors
///
/// Returns an I/O error on unreadable inputs, parse failures, or
/// component indices that do not match this build's condensation.
pub fn run_worker(task_path: &Path) -> io::Result<()> {
    let task: ShardTask =
        serde_json::from_str(&fs::read_to_string(task_path)?).map_err(invalid)?;
    let sources: Vec<String> = task
        .sources
        .iter()
        .map(fs::read_to_string)
        .collect::<io::Result<_>>()?;
    let program =
        rid_frontend::parse_program(sources.iter().map(String::as_str)).map_err(invalid)?;
    let predefined = load_db(Path::new(&task.predefined))?;
    let options = task.options.to_options()?;

    let graph = CallGraph::build(&program);
    let cond = graph.condensation();
    let n_comps = cond.members.len();
    let mut mask = CompMask { analyze: vec![false; n_comps], emit: vec![false; n_comps] };
    for &c in task.analyze_comps.iter().chain(&task.emit_comps) {
        *mask
            .analyze
            .get_mut(c)
            .ok_or_else(|| invalid(format_args!("component {c} out of range")))? = true;
    }
    for &c in &task.emit_comps {
        mask.emit[c] = true;
    }

    let mut cache = match &task.store_in {
        Some(path) => SummaryCache::from_store(SummaryStore::open(Path::new(path))?),
        None => SummaryCache::new(),
    };
    let result = analyze_program_masked(
        &program,
        &predefined,
        &options,
        &task.faults,
        Some(&mut cache),
        Some(&mask),
    );

    // Delta store: exactly the entries this shard computed fresh (cache
    // probes never promote backing hits into the resident map, so the
    // resident map after a run *is* the delta).
    let delta = write_store_bytes(&cache.schema, &cache.entries, None)?;
    atomic_write(Path::new(&task.store_out), &delta)?;

    // Owned summaries: analyzed members of emit components. Predefined
    // names are skipped (their "summary" is the API spec the coordinator
    // already has); unanalyzed members of partially-active components
    // have no summary at all.
    let functions = program.functions();
    let mut summaries = Vec::new();
    for &c in &task.emit_comps {
        for &i in &cond.members[c] {
            let name = functions[i].name();
            if predefined.contains(name) {
                continue;
            }
            if let Some(summary) = result.summaries.get(name) {
                summaries.push(summary.clone());
            }
        }
    }
    let output = ShardOutput {
        reports: result.reports,
        degraded: result.degraded,
        stats: result.stats,
        summaries,
    };
    let json = serde_json::to_string(&output).map_err(invalid)?;
    atomic_write(Path::new(&task.output), json.as_bytes())
}

/// Groups the active components into wavefront levels:
/// `level(C) = 1 + max(level of C's active direct callee components)`
/// (1 for active leaves). Returned ascending by level, components
/// ascending within a level. Components in one level are never in each
/// other's dependency closure — the scheduling invariant sharding rests
/// on.
#[must_use]
pub(crate) fn wavefronts(cond: &Condensation, active: &[bool]) -> Vec<Vec<usize>> {
    let n = cond.members.len();
    let mut level = vec![0usize; n];
    let mut max_level = 0;
    for c in 0..n {
        if !active[c] {
            continue;
        }
        // Component indices ascend in reverse topological order, so every
        // callee's level is final before its callers read it.
        let mut l = 1;
        for &cw in &cond.callee_comps[c] {
            if active[cw] {
                l = l.max(level[cw] + 1);
            }
        }
        level[c] = l;
        max_level = max_level.max(l);
    }
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); max_level];
    for c in 0..n {
        if active[c] {
            out[level[c] - 1].push(c);
        }
    }
    out
}

/// Transitive active-callee closure of `seeds` (inclusive), as a
/// per-component mask. Dependencies never cross inactive components
/// (their functions get default summaries regardless), matching the
/// driver's `remaining` counters exactly.
#[must_use]
pub(crate) fn active_closure(cond: &Condensation, active: &[bool], seeds: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; cond.members.len()];
    let mut worklist: Vec<usize> = Vec::new();
    for &c in seeds {
        if !mask[c] {
            mask[c] = true;
            worklist.push(c);
        }
    }
    while let Some(c) = worklist.pop() {
        for &cw in &cond.callee_comps[c] {
            if active[cw] && !mask[cw] {
                mask[cw] = true;
                worklist.push(cw);
            }
        }
    }
    mask
}

/// A private scratch directory for one coordination run.
fn workspace() -> io::Result<PathBuf> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static RUNS: AtomicUsize = AtomicUsize::new(0);
    let run = RUNS.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("rid-shard-{}-{run}", std::process::id()));
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Analyzes `sources` across `processes` worker processes (see the
/// module docs for the protocol). `cache_path` doubles as the warm-start
/// input and the final merged-store output, exactly like `--cache` in a
/// single-process run; when `None` the store exchange still happens,
/// through a scratch directory that is removed afterwards.
///
/// The result is byte-identical to [`crate::analyze_sources`] with the
/// same options and faults — including the report order, the summary
/// DB, and (when `cache_path` is given) the store file bytes.
///
/// # Errors
///
/// Returns an I/O error on parse failures, worker spawn/exit failures,
/// or corrupt intermediate files.
pub fn analyze_processes(
    sources: &[String],
    predefined: &SummaryDb,
    options: &AnalysisOptions,
    faults: &FaultPlan,
    processes: usize,
    cache_path: Option<&Path>,
) -> io::Result<AnalysisResult> {
    analyze_processes_traced(sources, predefined, options, faults, processes, cache_path)
        .map(|(result, _)| result)
}

/// One shard worker's stitched trace lane: its OS process id (the
/// Chrome `pid` lane) and the events parsed from its flush file.
#[derive(Clone, Debug)]
pub struct ShardTrace {
    /// The worker's OS process id.
    pub pid: u64,
    /// Lane label, e.g. `shard L2.0` (wavefront level 2, shard 0).
    pub label: String,
    /// The worker's drained span events.
    pub events: Vec<rid_obs::TraceEvent>,
}

/// The shard-worker traces a traced multi-process run collected, tied
/// together by one trace id. Feed the lanes (plus the coordinator's own
/// drained trace) to [`rid_obs::chrome_json_merged`] for a single
/// timeline with one pid lane per process.
#[derive(Clone, Debug, Default)]
pub struct StitchedTrace {
    /// The run's trace id (also exported into the merged Chrome JSON).
    pub trace_id: u64,
    /// One lane per spawned shard worker, spawn order.
    pub shards: Vec<ShardTrace>,
}

/// [`analyze_processes`] plus cross-process trace stitching: when
/// tracing is enabled ([`rid_obs::enabled`]), every spawned worker
/// inherits [`TRACE_FILE_ENV`]/[`TRACE_ID_ENV`], flushes its span rings
/// on exit, and the coordinator parses the per-shard flush files back
/// into [`StitchedTrace`] lanes. Returns `None` for the trace when
/// tracing is disabled — the analysis result is byte-identical either
/// way.
///
/// # Errors
///
/// Same failure modes as [`analyze_processes`]; an unreadable or
/// foreign trace flush file only drops that lane, never the run.
pub fn analyze_processes_traced(
    sources: &[String],
    predefined: &SummaryDb,
    options: &AnalysisOptions,
    faults: &FaultPlan,
    processes: usize,
    cache_path: Option<&Path>,
) -> io::Result<(AnalysisResult, Option<StitchedTrace>)> {
    let processes = processes.max(1);
    let program =
        rid_frontend::parse_program(sources.iter().map(String::as_str)).map_err(invalid)?;
    let graph = CallGraph::build(&program);
    let functions = program.functions();

    let classify_start = Instant::now();
    let classification = if options.selective {
        classify(&program, &graph, predefined)
    } else {
        Classification::default()
    };
    let classify_time = classify_start.elapsed();
    let analyze_start = Instant::now();

    let should_analyze = |name: &str| -> bool {
        if predefined.contains(name) {
            return false;
        }
        if !options.selective {
            return true;
        }
        classification.category(name).is_analyzed()
    };
    let cond = graph.condensation();
    let active: Vec<bool> = cond
        .members
        .iter()
        .map(|members| members.iter().any(|&i| should_analyze(functions[i].name())))
        .collect();

    let dir = workspace()?;
    let mut stitched: Option<StitchedTrace> = rid_obs::enabled()
        .then(|| StitchedTrace { trace_id: crate::obs::next_trace_id(), shards: Vec::new() });
    // (reports, degraded, stats, summaries, final store path)
    type LevelOutputs =
        (Vec<IppReport>, BTreeMap<String, Degradation>, AnalysisStats, Vec<Summary>, Option<PathBuf>);
    let stitched_ref = &mut stitched;
    let run = (|| -> io::Result<LevelOutputs> {
        let mut source_paths = Vec::with_capacity(sources.len());
        for (i, source) in sources.iter().enumerate() {
            let path = dir.join(format!("src_{i:05}.ril"));
            fs::write(&path, source)?;
            source_paths.push(path.display().to_string());
        }
        let predefined_path = dir.join("predefined.json");
        save_db(predefined, &predefined_path)?;

        // Warm start: re-encode whatever cache file exists (RIDSS1 or
        // legacy JSON) as a store the workers can open directly.
        let mut store_path: Option<PathBuf> = match cache_path {
            Some(path) if path.exists() => {
                let cache = load_cache(path)?;
                let bytes =
                    write_store_bytes(&cache.schema, &cache.entries, cache.backing_store())?;
                let initial = dir.join("store_0000.rss");
                atomic_write(&initial, &bytes)?;
                Some(initial)
            }
            _ => None,
        };

        let exe = std::env::current_exe()?;
        let mut reports: Vec<IppReport> = Vec::new();
        let mut degraded: BTreeMap<String, Degradation> = BTreeMap::new();
        let mut stats = AnalysisStats::default();
        let mut summaries: Vec<Summary> = Vec::new();
        let task_options = TaskOptions::of(options);

        for (round, level) in wavefronts(&cond, &active).iter().enumerate() {
            let mut shards: Vec<Vec<usize>> = vec![Vec::new(); processes];
            for (rank, &c) in level.iter().enumerate() {
                shards[rank % processes].push(c);
            }
            let mut children = Vec::new();
            let mut delta_paths = Vec::new();
            let mut output_paths = Vec::new();
            let mut trace_paths: Vec<(usize, PathBuf)> = Vec::new();
            for (s, comps) in shards.iter().enumerate() {
                if comps.is_empty() {
                    continue;
                }
                let closure = active_closure(&cond, &active, comps);
                let emit: std::collections::HashSet<usize> = comps.iter().copied().collect();
                let analyze_comps: Vec<usize> = closure
                    .iter()
                    .enumerate()
                    .filter(|&(c, &m)| m && !emit.contains(&c))
                    .map(|(c, _)| c)
                    .collect();
                let store_out = dir.join(format!("delta_{round:04}_{s:02}.rss"));
                let output = dir.join(format!("out_{round:04}_{s:02}.json"));
                let task = ShardTask {
                    sources: source_paths.clone(),
                    predefined: predefined_path.display().to_string(),
                    options: task_options.clone(),
                    faults: faults.clone(),
                    analyze_comps,
                    emit_comps: comps.clone(),
                    store_in: store_path.as_ref().map(|p| p.display().to_string()),
                    store_out: store_out.display().to_string(),
                    output: output.display().to_string(),
                };
                let task_path = dir.join(format!("task_{round:04}_{s:02}.json"));
                fs::write(&task_path, serde_json::to_string(&task).map_err(invalid)?)?;
                let mut command = std::process::Command::new(&exe);
                command
                    .arg(WORKER_ARG)
                    .arg(&task_path)
                    .stdin(std::process::Stdio::null())
                    // Workers must not interleave with the coordinator's
                    // stdout (`--json` byte-identity); stderr passes
                    // through for panic-hook and degradation noise.
                    .stdout(std::process::Stdio::null());
                if let Some(st) = stitched_ref.as_ref() {
                    let trace_out = dir.join(format!("trace_{round:04}_{s:02}.jsonl"));
                    command
                        .env(TRACE_FILE_ENV, &trace_out)
                        .env(TRACE_ID_ENV, format!("{:016x}", st.trace_id));
                    trace_paths.push((s, trace_out));
                }
                let child = command.spawn()?;
                children.push((s, child));
                delta_paths.push(store_out);
                output_paths.push(output);
            }
            let mut pids: BTreeMap<usize, u64> = BTreeMap::new();
            for (s, mut child) in children {
                pids.insert(s, u64::from(child.id()));
                let status = child.wait()?;
                if !status.success() {
                    return Err(invalid(format_args!(
                        "worker {s} of level {} exited with {status}",
                        round + 1
                    )));
                }
            }
            // Stitch: each worker flushed its span rings into its trace
            // file before exit; parse them back as one lane per process.
            // An unreadable lane (or one whose header names a different
            // trace id — a foreign artifact) is dropped, not fatal.
            if let Some(st) = stitched_ref.as_mut() {
                for (s, path) in trace_paths {
                    let text = fs::read_to_string(&path).unwrap_or_default();
                    if trace_header_id(&text).is_some_and(|id| id != st.trace_id) {
                        continue;
                    }
                    st.shards.push(ShardTrace {
                        pid: pids.get(&s).copied().unwrap_or(0),
                        label: format!("shard L{}.{s}", round + 1),
                        events: crate::obs::parse_trace_jsonl(&text),
                    });
                }
            }
            // Store union: this level's deltas shadow everything older.
            // Deltas of one level are disjoint (each component is owned by
            // exactly one shard), so their order among themselves is
            // immaterial.
            let deltas: Vec<SummaryStore> = delta_paths
                .iter()
                .map(|p| SummaryStore::open(p))
                .collect::<io::Result<_>>()?;
            let prev = store_path.as_ref().map(|p| SummaryStore::open(p)).transpose()?;
            let mut parts: Vec<&SummaryStore> = deltas.iter().collect();
            if let Some(prev) = &prev {
                parts.push(prev);
            }
            let merged = union_store_bytes(CACHE_SCHEMA, &parts)?;
            let merged_path = dir.join(format!("store_{:04}.rss", round + 1));
            atomic_write(&merged_path, &merged)?;
            store_path = Some(merged_path);

            for path in &output_paths {
                let out: ShardOutput =
                    serde_json::from_str(&fs::read_to_string(path)?).map_err(invalid)?;
                reports.extend(out.reports);
                degraded.extend(out.degraded);
                stats.absorb(&out.stats);
                summaries.extend(out.summaries);
            }
        }
        Ok((reports, degraded, stats, summaries, store_path))
    })();

    let (mut reports, mut degraded, mut stats, summaries, store_path) = match run {
        Ok(parts) => parts,
        Err(e) => {
            let _ = fs::remove_dir_all(&dir);
            return Err(e);
        }
    };

    if let Some(path) = cache_path {
        let bytes = match &store_path {
            Some(p) => fs::read(p)?,
            None => write_store_bytes(CACHE_SCHEMA, &BTreeMap::new(), None)?,
        };
        atomic_write(path, &bytes)?;
    }
    let _ = fs::remove_dir_all(&dir);

    let mut db = predefined.clone();
    for summary in summaries {
        db.insert(summary);
    }
    if options.check_callbacks {
        callback_pass(&program, &db, options, &mut reports, &mut degraded);
    }
    // Refutation is a coordinator-only pass (workers ran with
    // `refute: false`), so merged multi-process reports are judged exactly
    // once, against the complete merged summary database — byte-identical
    // to the sequential driver's pass.
    if options.refute {
        crate::refute::refute_pass(&db, options.budget.solver_fuel, &mut reports, &mut stats);
    }

    // Shard stats summed whole-program fields P times over; the
    // coordinator owns those.
    stats.functions_total = functions.len();
    stats.counts = classification.counts();
    stats.classify_time = classify_time;
    stats.analyze_time = analyze_start.elapsed();

    reports.sort_by(|a, b| {
        (&a.function, &a.refcount, a.path_a, a.path_b).cmp(&(
            &b.function,
            &b.refcount,
            b.path_a,
            b.path_b,
        ))
    });
    Ok((AnalysisResult { reports, summaries: db, classification, stats, degraded }, stitched))
}

/// The `trace_id` named by a worker flush file's header line, if the
/// first line is such a header.
fn trace_header_id(text: &str) -> Option<u64> {
    let first = text.lines().next()?;
    let v = serde_json::from_str::<serde_json::Value>(first).ok()?;
    u64::from_str_radix(v["trace_id"].as_str()?, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_frontend::parse_program;

    fn cond_of(src: &str) -> (Condensation, Vec<bool>) {
        let program = parse_program([src]).unwrap();
        let graph = CallGraph::build(&program);
        let cond = graph.condensation();
        let active = vec![true; cond.members.len()];
        (cond, active)
    }

    #[test]
    fn wavefronts_are_callee_closed_levels() {
        // top -> mid -> leaf, plus an isolated leaf `solo`.
        let (cond, active) = cond_of(
            "module m;
             fn leaf(d) { return; }
             fn mid(d) { leaf(d); return; }
             fn top(d) { mid(d); return; }
             fn solo(d) { return; }",
        );
        let levels = wavefronts(&cond, &active);
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].len(), 2, "both leaves at level 1");
        assert_eq!(levels[1].len(), 1);
        assert_eq!(levels[2].len(), 1);
        // No component's callees share its level, and levels partition
        // the active components.
        let mut seen = std::collections::HashSet::new();
        for level in &levels {
            for &c in level {
                assert!(seen.insert(c), "levels must partition components");
                for &cw in &cond.callee_comps[c] {
                    assert!(
                        seen.contains(&cw),
                        "active callee {cw} of {c} must be in an earlier level"
                    );
                }
            }
        }
        assert_eq!(seen.len(), cond.members.len());
    }

    #[test]
    fn inactive_components_break_dependencies() {
        let (cond, mut active) = cond_of(
            "module m;
             fn leaf(d) { return; }
             fn mid(d) { leaf(d); return; }
             fn top(d) { mid(d); return; }",
        );
        // Deactivate `mid`: `top` no longer depends on `leaf` through it.
        let program = parse_program([
            "module m;
             fn leaf(d) { return; }
             fn mid(d) { leaf(d); return; }
             fn top(d) { mid(d); return; }",
        ])
        .unwrap();
        let graph = CallGraph::build(&program);
        let mid_comp = cond.comp_of[graph.index_of("mid").unwrap()];
        let top_comp = cond.comp_of[graph.index_of("top").unwrap()];
        active[mid_comp] = false;
        let levels = wavefronts(&cond, &active);
        assert_eq!(levels.len(), 1, "both remaining comps are level 1: {levels:?}");
        let closure = active_closure(&cond, &active, &[top_comp]);
        assert_eq!(closure.iter().filter(|&&m| m).count(), 1, "closure stops at inactive comps");
        assert!(closure[top_comp]);
    }

    #[test]
    fn closure_is_transitive_and_inclusive() {
        let (cond, active) = cond_of(
            "module m;
             fn leaf(d) { return; }
             fn mid(d) { leaf(d); return; }
             fn top(d) { mid(d); return; }",
        );
        let top = cond.members.len() - 1;
        let closure = active_closure(&cond, &active, &[top]);
        assert!(closure.iter().all(|&m| m), "top's closure covers the whole chain");
    }

    #[test]
    fn task_options_round_trip() {
        let options = AnalysisOptions {
            threads: 3,
            steal_batch: 5,
            selective: false,
            exec_mode: ExecMode::Tree,
            budget: Budget {
                func_deadline: Some(std::time::Duration::from_millis(250)),
                global_deadline: None,
                solver_fuel: Some(9000),
            },
            ..AnalysisOptions::default()
        };
        let wire = TaskOptions::of(&options);
        let json = serde_json::to_string(&wire).unwrap();
        let back: TaskOptions = serde_json::from_str(&json).unwrap();
        let rebuilt = back.to_options().unwrap();
        assert_eq!(rebuilt.threads, 3);
        assert_eq!(rebuilt.steal_batch, 5);
        assert!(!rebuilt.selective);
        assert_eq!(rebuilt.exec_mode, ExecMode::Tree);
        assert_eq!(rebuilt.budget.func_deadline, options.budget.func_deadline);
        assert_eq!(rebuilt.budget.solver_fuel, Some(9000));
        assert_eq!(rebuilt.limits, options.limits);
        assert!(!rebuilt.check_callbacks, "workers never run the callback pass");
        assert!(!rebuilt.refute, "workers never run the refutation pass");
    }
}
