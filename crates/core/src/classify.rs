//! Two-phase function classification (§5.2 of the paper).
//!
//! Analyzing a whole OS kernel path-by-path with constraint solving is too
//! expensive, so RID first classifies every function into one of three
//! categories and only analyzes the first two:
//!
//! 1. **Functions with refcount changes** — they (transitively) call
//!    refcount APIs. Fully analyzed.
//! 2. **Functions affecting those with refcount changes** — their return
//!    values feed the arguments, return values, or branch conditions
//!    around refcount-changing calls. Analyzed only when simple (at most
//!    three conditional branches); otherwise assumed to return anything.
//! 3. **Everything else** — ignored.

use std::collections::{HashMap, HashSet};

use rid_ir::Program;
use serde::{Deserialize, Serialize};

use crate::callgraph::CallGraph;
use crate::slice::sliced_callees;
use crate::summary::SummaryDb;

/// The §5.2 category of a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Category 1: (transitively) changes refcounts; fully analyzed.
    RefcountChanging,
    /// Category 2, simple enough (≤ `max_branches`) to be analyzed.
    AffectingAnalyzed,
    /// Category 2, too complex; gets the unconstrained default summary.
    AffectingSkipped,
    /// Category 3: irrelevant to the analysis.
    Other,
}

impl Category {
    /// Whether functions of this category are symbolically analyzed.
    #[must_use]
    pub fn is_analyzed(self) -> bool {
        matches!(self, Category::RefcountChanging | Category::AffectingAnalyzed)
    }
}

/// The classification of every function in a program.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Classification {
    map: HashMap<String, Category>,
}

/// Census counts per category (Table 1 of the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryCounts {
    /// Category-1 functions.
    pub refcount_changing: usize,
    /// Category-2 functions that are analyzed.
    pub affecting_analyzed: usize,
    /// Category-2 functions that are skipped.
    pub affecting_skipped: usize,
    /// Category-3 functions.
    pub other: usize,
}

impl CategoryCounts {
    /// Total number of functions.
    #[must_use]
    pub fn total(&self) -> usize {
        self.refcount_changing + self.affecting_analyzed + self.affecting_skipped + self.other
    }
}

impl Classification {
    /// The category of `func` ([`Category::Other`] when unknown).
    #[must_use]
    pub fn category(&self, func: &str) -> Category {
        self.map.get(func).copied().unwrap_or(Category::Other)
    }

    /// Census counts for Table 1.
    #[must_use]
    pub fn counts(&self) -> CategoryCounts {
        let mut counts = CategoryCounts::default();
        for category in self.map.values() {
            match category {
                Category::RefcountChanging => counts.refcount_changing += 1,
                Category::AffectingAnalyzed => counts.affecting_analyzed += 1,
                Category::AffectingSkipped => counts.affecting_skipped += 1,
                Category::Other => counts.other += 1,
            }
        }
        counts
    }

    /// Iterates over `(function, category)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, Category)> {
        self.map.iter().map(|(name, &c)| (name.as_str(), c))
    }
}

/// Maximum conditional branches for a category-2 function to be analyzed
/// (the paper uses three, §5.2).
pub const MAX_CATEGORY2_BRANCHES: usize = 3;

/// Classifies every function of `program` (§5.2's two phases).
///
/// `predefined` supplies the refcount APIs that seed phase 1 (their
/// summaries change refcounts).
#[must_use]
pub fn classify(program: &Program, graph: &CallGraph, predefined: &SummaryDb) -> Classification {
    let api_changes: HashSet<&str> = predefined.refcount_changing_names().collect();

    // Phase 1: reverse-topological closure of "calls something that
    // changes refcounts".
    let mut refcount_changing: HashSet<usize> = HashSet::new();
    for i in graph.reverse_topological_order() {
        let via_api = graph.unknown_callees(i).iter().any(|c| api_changes.contains(c.as_str()));
        // A defined function with a predefined summary is also a seed
        // (predefined summaries shadow bodies, §5.1).
        let shadowed = predefined
            .get(graph.name(i))
            .is_some_and(crate::summary::Summary::changes_refcounts);
        let via_calls = graph.callees(i).iter().any(|j| refcount_changing.contains(j));
        if via_api || via_calls || shadowed {
            refcount_changing.insert(i);
        }
    }

    // Phase 2: walk callers (topological order — callers after callees is
    // irrelevant here; we scan every function once) and mark non-category-1
    // callees whose results land in the §5.2 slice.
    let is_rc = |name: &str| -> bool {
        api_changes.contains(name)
            || graph.index_of(name).is_some_and(|i| refcount_changing.contains(&i))
    };
    let functions = program.functions();
    let mut affecting: HashSet<usize> = HashSet::new();
    for (i, func) in functions.iter().enumerate() {
        debug_assert_eq!(graph.name(i), func.name());
        // Only functions related to refcount behaviour propagate
        // relevance: category-1 functions, and (transitively) category-2
        // ones. Scanning category-1 functions finds the first layer;
        // a fixpoint below extends through category-2 callers.
        if !refcount_changing.contains(&i) {
            continue;
        }
        for callee in sliced_callees(func, &is_rc) {
            if let Some(j) = graph.index_of(&callee) {
                if !refcount_changing.contains(&j) {
                    affecting.insert(j);
                }
            }
        }
    }
    // Fixpoint: a function whose result affects a category-2 function's
    // return value is itself category 2.
    loop {
        let mut added = Vec::new();
        for &i in &affecting {
            let func = functions[i];
            for callee in sliced_callees(func, &is_rc) {
                if let Some(j) = graph.index_of(&callee) {
                    if !refcount_changing.contains(&j) && !affecting.contains(&j) {
                        added.push(j);
                    }
                }
            }
        }
        if added.is_empty() {
            break;
        }
        affecting.extend(added);
    }

    let mut map = HashMap::new();
    for (i, func) in functions.iter().enumerate() {
        let category = if refcount_changing.contains(&i) {
            Category::RefcountChanging
        } else if affecting.contains(&i) {
            if func.conditional_branch_count() <= MAX_CATEGORY2_BRANCHES {
                Category::AffectingAnalyzed
            } else {
                Category::AffectingSkipped
            }
        } else {
            Category::Other
        };
        map.insert(func.name().to_owned(), category);
    }
    Classification { map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::linux_dpm_apis;
    use rid_frontend::parse_program;

    fn classify_src(src: &str) -> Classification {
        let program = parse_program([src]).unwrap();
        let graph = CallGraph::build(&program);
        classify(&program, &graph, &linux_dpm_apis())
    }

    #[test]
    fn direct_api_caller_is_category1() {
        let c = classify_src("module m; fn f(dev) { pm_runtime_get(dev); return; }");
        assert_eq!(c.category("f"), Category::RefcountChanging);
    }

    #[test]
    fn transitive_api_caller_is_category1() {
        let c = classify_src(
            "module m; fn wrapper(dev) { pm_runtime_get(dev); return; } fn outer(dev) { wrapper(dev); return; }",
        );
        assert_eq!(c.category("outer"), Category::RefcountChanging);
    }

    #[test]
    fn condition_source_is_category2() {
        let c = classify_src(
            r#"module m;
            fn probe() { let v = random; return v; }
            fn f(dev) {
                let st = probe();
                if (st < 0) { return -1; }
                pm_runtime_get(dev);
                return 0;
            }"#,
        );
        assert_eq!(c.category("probe"), Category::AffectingAnalyzed);
        assert_eq!(c.category("f"), Category::RefcountChanging);
    }

    #[test]
    fn complex_category2_is_skipped() {
        let mut probe = String::from("module m; fn probe(x) {\n");
        for i in 0..5 {
            probe.push_str(&format!("if (x > {i}) {{ step{i}(); }}\n"));
        }
        probe.push_str("let v = random; return v; }\n");
        probe.push_str(
            "fn f(dev) { let st = probe(dev); if (st) { pm_runtime_get(dev); } return; }",
        );
        let c = classify_src(&probe);
        assert_eq!(c.category("probe"), Category::AffectingSkipped);
    }

    #[test]
    fn unrelated_function_is_other() {
        let c = classify_src(
            "module m; fn log() { return; } fn f(dev) { log(); pm_runtime_get(dev); return; }",
        );
        assert_eq!(c.category("log"), Category::Other);
        assert_eq!(c.category("unknown_function"), Category::Other);
    }

    #[test]
    fn counts_add_up() {
        let c = classify_src(
            r#"module m;
            fn probe() { let v = random; return v; }
            fn log() { return; }
            fn f(dev) { let s = probe(); if (s) { pm_runtime_get(dev); } return; }"#,
        );
        let counts = c.counts();
        assert_eq!(counts.total(), 3);
        assert_eq!(counts.refcount_changing, 1);
        assert_eq!(counts.affecting_analyzed, 1);
        assert_eq!(counts.other, 1);
    }

    #[test]
    fn category_is_analyzed_flags() {
        assert!(Category::RefcountChanging.is_analyzed());
        assert!(Category::AffectingAnalyzed.is_analyzed());
        assert!(!Category::AffectingSkipped.is_analyzed());
        assert!(!Category::Other.is_analyzed());
    }
}
