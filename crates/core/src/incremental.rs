//! Incremental re-analysis (§5.4, limitation 4).
//!
//! RID randomly drops one path of each inconsistent pair, which can hide
//! further inconsistencies in the *callers* of a buggy function. The paper
//! proposes an **incremental recheck**: once the bug is fixed, re-analyze
//! using "previously calculated summaries of unaffected functions", so
//! only the fixed function and its transitive callers pay the cost.
//!
//! [`reanalyze`] implements exactly that: given the previous
//! [`AnalysisResult`] and the set of changed functions, it invalidates the
//! changed functions plus everything that can reach them in the call
//! graph, resummarizes only those (bottom-up, reusing every retained
//! summary), and splices old and new reports together.

use std::collections::{BTreeMap, HashSet};
use std::time::Instant;

use rid_ir::Program;

use crate::budget::{BudgetMeter, Degradation, DegradeReason, FunctionCost};
use crate::callgraph::CallGraph;
use crate::driver::{
    effective_fuel, guarded_attempt, reduced_limits, AnalysisOptions, AnalysisResult,
    AnalysisStats,
};
use crate::exec::SummaryView;
use crate::fault::FaultPlan;
use crate::ipp::build_summary;
use crate::summary::{Summary, SummaryDb};

/// The set of functions whose summaries a change invalidates: the changed
/// functions plus all their transitive callers.
#[must_use]
pub fn affected_functions(graph: &CallGraph, changed: &[&str]) -> HashSet<String> {
    let mut affected: HashSet<usize> = HashSet::new();
    let mut worklist: Vec<usize> =
        changed.iter().filter_map(|name| graph.index_of(name)).collect();
    while let Some(i) = worklist.pop() {
        if !affected.insert(i) {
            continue;
        }
        worklist.extend(graph.callers(i).iter().copied());
    }
    affected.into_iter().map(|i| graph.name(i).to_owned()).collect()
}

/// Re-analyzes `program` after `changed` functions were edited, reusing
/// the summaries of unaffected functions from `previous`.
///
/// `program` is the *post-edit* program; `previous` is the result of
/// analyzing the pre-edit program (or an earlier incremental pass).
/// Reports for unaffected functions are carried over verbatim; affected
/// functions are re-summarized and re-checked.
///
/// The result is equivalent to a full re-analysis whenever the edit only
/// touches the bodies of `changed` (the §5.4 use case: fixing a reported
/// inconsistency and rechecking its callers). When a *deleted* function's
/// callers should be invalidated, list the deleted name in `changed` too:
/// names absent from the new program contribute no callers of their own,
/// so also list the (former) callers explicitly in that case.
#[must_use]
pub fn reanalyze(
    program: &Program,
    predefined: &SummaryDb,
    previous: &AnalysisResult,
    changed: &[&str],
    options: &AnalysisOptions,
) -> AnalysisResult {
    let graph = CallGraph::build(program);
    let affected = affected_functions(&graph, changed);

    // Start from the previous database with affected entries dropped
    // (SummaryDb has no remove; rebuild without them).
    let mut db = predefined.clone();
    for summary in previous.summaries.iter() {
        if !affected.contains(&summary.func) && !predefined.contains(&summary.func) {
            db.insert(summary.clone());
        }
    }

    let changed_set: HashSet<&str> = changed.iter().copied().collect();
    let should_analyze = |name: &str| -> bool {
        if predefined.contains(name) {
            return false;
        }
        if !affected.contains(name) {
            return false;
        }
        if !options.selective {
            return true;
        }
        // Reuse the previous run's implicit decision: a function that had
        // a summary was analyzed. Functions named in `changed` are always
        // re-analyzed (they may be brand new and absent from the previous
        // classification).
        changed_set.contains(name)
            || previous.summaries.get(name).is_some()
            || previous.classification.category(name).is_analyzed()
    };

    let mut stats = AnalysisStats::default();
    let mut reports: Vec<crate::ipp::IppReport> = previous
        .reports
        .iter()
        .filter(|r| !affected.contains(&r.function))
        .cloned()
        .collect();

    // Degradation records for unaffected functions are carried over, like
    // their reports; re-analyzed functions get fresh records below.
    let mut degraded: BTreeMap<String, Degradation> = previous
        .degraded
        .iter()
        .filter(|(name, _)| !affected.contains(name.as_str()))
        .map(|(name, d)| (name.clone(), *d))
        .collect();

    // Re-analysis runs under the same fault-tolerance regime as the full
    // driver: budgets are metered and a panicking function is retried
    // once with reduced limits, then degraded to the default summary.
    let faults = FaultPlan::none();
    let global_deadline = options.budget.global_deadline.map(|d| Instant::now() + d);
    let functions = program.functions();
    for i in graph.reverse_topological_order() {
        let func = functions[i];
        let name = func.name();
        if !should_analyze(name) {
            continue;
        }
        let fuel = effective_fuel(&options.budget, &faults, name);
        let meter = BudgetMeter::start(&options.budget, global_deadline);
        let first = guarded_attempt(
            func,
            SummaryView::Db(&db),
            &options.limits,
            options.sat,
            &meter,
            fuel,
            &faults,
            0,
            options.exec_mode,
        );
        let first_ms = meter.elapsed().as_millis() as u64;
        let (attempt, forced, wall_ms) = match first {
            Ok(ok) => (Some(ok), None, first_ms),
            Err(()) => {
                let meter = BudgetMeter::start(&options.budget, global_deadline);
                let retry = guarded_attempt(
                    func,
                    SummaryView::Db(&db),
                    &reduced_limits(&options.limits),
                    options.sat,
                    &meter,
                    fuel,
                    &faults,
                    1,
                    options.exec_mode,
                );
                let total = first_ms + meter.elapsed().as_millis() as u64;
                (retry.ok(), Some(DegradeReason::Retried), total)
            }
        };
        match attempt {
            Some((outcome, mut ipp)) => {
                let callees = crate::driver::callee_names(&graph, i);
                for report in &mut ipp.reports {
                    if let Some(p) = report.provenance.as_mut() {
                        p.callees = callees.clone();
                    }
                }
                let summary = build_summary(name, &outcome.path_entries, &ipp, outcome.partial);
                stats.record_outcome(&outcome);
                reports.extend(ipp.reports);
                db.insert(summary);
                if let Some(reason) = forced.or(outcome.degrade) {
                    let cost = FunctionCost {
                        paths: outcome.paths_enumerated,
                        states: outcome.states_explored,
                        wall_ms,
                    };
                    crate::budget::trace_degradation(name, reason);
                    degraded.insert(name.to_owned(), Degradation { reason, cost });
                }
            }
            None => {
                db.insert(Summary::default_for(name));
                stats.functions_analyzed += 1;
                stats.functions_partial += 1;
                let cost = FunctionCost { paths: 0, states: 0, wall_ms };
                crate::budget::trace_degradation(name, DegradeReason::Panic);
                degraded.insert(
                    name.to_owned(),
                    Degradation { reason: DegradeReason::Panic, cost },
                );
            }
        }
    }

    // Extensions follow the main pass: re-check affected callbacks with
    // the return-value-blind contract when the option is on (mirrors
    // `analyze_program`).
    if options.check_callbacks {
        let model = crate::callbacks::CallbackModel::linux_default();
        let callbacks = crate::callbacks::collect_callbacks(program, &model);
        let existing: HashSet<(String, String)> = reports
            .iter()
            .map(|r| (r.function.clone(), r.refcount.to_string()))
            .collect();
        for name in callbacks {
            if !affected.contains(&name) {
                continue; // carried-over callback reports are still valid
            }
            let Some(func) = program.function(&name) else { continue };
            for report in crate::callbacks::check_callback_function(
                func,
                &db,
                &options.limits,
                options.sat,
            ) {
                if !existing.contains(&(report.function.clone(), report.refcount.to_string()))
                {
                    reports.push(report);
                }
            }
        }
    }

    stats.functions_total = functions.len();
    reports.sort_by(|a, b| {
        (&a.function, &a.refcount, a.path_a, a.path_b).cmp(&(
            &b.function,
            &b.refcount,
            b.path_a,
            b.path_b,
        ))
    });

    AnalysisResult {
        reports,
        summaries: db,
        classification: previous.classification.clone(),
        stats,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::linux_dpm_apis;
    use crate::driver::analyze_sources;
    use rid_frontend::parse_program;

    const LIB_BUGGY: &str = r#"module lib;
        fn helper(dev) {
            let r = check(dev);
            if (r < 0) { return 0; }
            pm_runtime_get_sync(dev);
            return 0;
        }"#;

    const LIB_FIXED: &str = r#"module lib;
        fn helper(dev) {
            let r = check(dev);
            if (r < 0) { return -1; }
            pm_runtime_get_sync(dev);
            return 0;
        }"#;

    const APP: &str = r#"module app;
        fn caller(dev) {
            let st = helper(dev);
            if (st) { return 0; }
            pm_runtime_put(dev);
            return 0;
        }
        fn unrelated(dev) {
            pm_runtime_get_sync(dev);
            return 0;
        }"#;

    #[test]
    fn affected_set_is_transitive_callers() {
        let program = parse_program([LIB_BUGGY, APP]).unwrap();
        let graph = CallGraph::build(&program);
        let affected = affected_functions(&graph, &["helper"]);
        assert!(affected.contains("helper"));
        assert!(affected.contains("caller"));
        assert!(!affected.contains("unrelated"));
    }

    #[test]
    fn recheck_after_fix_matches_full_reanalysis() {
        let options = AnalysisOptions::default();
        let apis = linux_dpm_apis();

        let before = analyze_sources([LIB_BUGGY, APP], &apis, &options).unwrap();
        // The buggy helper is reported (both paths return 0).
        assert!(before.reports.iter().any(|r| r.function == "helper"));

        // Fix helper; re-analyze incrementally.
        let fixed_program = parse_program([LIB_FIXED, APP]).unwrap();
        let incremental =
            reanalyze(&fixed_program, &apis, &before, &["helper"], &options);
        let full = analyze_sources([LIB_FIXED, APP], &apis, &options).unwrap();

        let key = |r: &crate::ipp::IppReport| (r.function.clone(), r.refcount.clone());
        let a: Vec<_> = incremental.reports.iter().map(key).collect();
        let b: Vec<_> = full.reports.iter().map(key).collect();
        assert_eq!(a, b);
        // Helper's report is gone after the fix.
        assert!(incremental.reports.iter().all(|r| r.function != "helper"));
    }

    #[test]
    fn unaffected_functions_are_not_reanalyzed() {
        let options = AnalysisOptions::default();
        let apis = linux_dpm_apis();
        let before = analyze_sources([LIB_BUGGY, APP], &apis, &options).unwrap();
        let fixed_program = parse_program([LIB_FIXED, APP]).unwrap();
        let incremental =
            reanalyze(&fixed_program, &apis, &before, &["helper"], &options);
        // Only helper and caller are re-summarized, not `unrelated`.
        assert_eq!(incremental.stats.functions_analyzed, 2);
        // `unrelated`'s summary is carried over.
        assert!(incremental.summaries.get("unrelated").is_some());
    }

    #[test]
    fn callback_extension_applies_during_recheck() {
        let options = AnalysisOptions { check_callbacks: true, ..Default::default() };
        let apis = linux_dpm_apis();
        // v1: balanced IRQ handler, registered — clean.
        let v1 = r#"module m;
            fn irq_handler(irq, data) {
                let ret = pm_runtime_get_sync(data.dev);
                if (ret < 0) { pm_runtime_put(data.dev); return 0; }
                pm_runtime_put(data.dev);
                return 1;
            }
            fn setup(dev) { request_irq(dev.irq, @irq_handler, dev); return 0; }"#;
        let before = analyze_sources([v1], &apis, &options).unwrap();
        assert!(before.reports.is_empty(), "{:?}", before.reports);

        // v2: the edit breaks the error path (Figure 10 shape).
        let v2 = r#"module m;
            fn irq_handler(irq, data) {
                let ret = pm_runtime_get_sync(data.dev);
                if (ret < 0) { return 0; }
                pm_runtime_put(data.dev);
                return 1;
            }
            fn setup(dev) { request_irq(dev.irq, @irq_handler, dev); return 0; }"#;
        let program = parse_program([v2]).unwrap();
        let after = reanalyze(&program, &apis, &before, &["irq_handler"], &options);
        assert!(
            after.reports.iter().any(|r| r.function == "irq_handler" && r.callback),
            "callback bug introduced by the edit must surface: {:?}",
            after.reports
        );
    }

    #[test]
    fn new_function_listed_in_changed_is_analyzed() {
        let options = AnalysisOptions::default();
        let apis = linux_dpm_apis();
        let before = analyze_sources([LIB_BUGGY, APP], &apis, &options).unwrap();
        // The edit adds a brand-new buggy function.
        let app_v2 = r#"module app;
            fn caller(dev) {
                let st = helper(dev);
                if (st) { return 0; }
                pm_runtime_put(dev);
                return 0;
            }
            fn unrelated(dev) {
                pm_runtime_get_sync(dev);
                return 0;
            }
            fn fresh_bug(dev) {
                let r = probe(dev);
                if (r < 0) { return 0; }
                pm_runtime_get_sync(dev);
                return 0;
            }"#;
        let program = parse_program([LIB_BUGGY, app_v2]).unwrap();
        let after = reanalyze(&program, &apis, &before, &["fresh_bug"], &options);
        assert!(
            after.reports.iter().any(|r| r.function == "fresh_bug"),
            "new function must be analyzed: {:?}",
            after.reports
        );
    }

    #[test]
    fn recheck_reveals_hidden_caller_inconsistency() {
        // §5.4's scenario: the dropped path in the callee hides a caller
        // bug; after the callee fix the caller's own inconsistency
        // surfaces.
        let lib_buggy = r#"module lib;
            fn get_ref(dev) {
                let r = probe(dev);
                if (r < 0) { return 0; }
                pm_runtime_get_sync(dev);
                return 0;
            }"#;
        let lib_fixed = r#"module lib;
            fn get_ref(dev) {
                pm_runtime_get_sync(dev);
                let r = probe(dev);
                if (r < 0) { pm_runtime_put(dev); return -1; }
                return 0;
            }"#;
        let app = r#"module app;
            fn caller(dev) {
                let st = get_ref(dev);
                if (st < 0) { return 0; }
                let u = use_dev(dev);
                if (u < 0) { return 0; }   // BUG: put skipped
                pm_runtime_put(dev);
                return 0;
            }"#;
        let options = AnalysisOptions::default();
        let apis = linux_dpm_apis();
        let before = analyze_sources([lib_buggy, app], &apis, &options).unwrap();
        // Before the fix, get_ref itself is inconsistent and was reported.
        assert!(before.reports.iter().any(|r| r.function == "get_ref"));

        let fixed_program = parse_program([lib_fixed, app]).unwrap();
        let after = reanalyze(&fixed_program, &apis, &before, &["get_ref"], &options);
        assert!(after.reports.iter().all(|r| r.function != "get_ref"));
        assert!(
            after.reports.iter().any(|r| r.function == "caller"),
            "caller inconsistency must surface after the fix: {:?}",
            after.reports
        );
    }
}
