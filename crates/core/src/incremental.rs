//! Incremental re-analysis (§5.4, limitation 4).
//!
//! RID randomly drops one path of each inconsistent pair, which can hide
//! further inconsistencies in the *callers* of a buggy function. The paper
//! proposes an **incremental recheck**: once the bug is fixed, re-analyze
//! using "previously calculated summaries of unaffected functions", so
//! only the fixed function and its transitive callers pay the cost.
//!
//! [`reanalyze`] implements exactly that: given the previous
//! [`AnalysisResult`] and the set of changed functions, it invalidates the
//! changed functions plus everything that can reach them in the call
//! graph, resummarizes only those (bottom-up, reusing every retained
//! summary), and splices old and new reports together.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::time::Instant;

use rid_ir::{Function, Program};

use crate::budget::{BudgetMeter, Degradation, DegradeReason, FunctionCost};
use crate::callgraph::CallGraph;
use crate::driver::{
    effective_fuel, guarded_attempt, reduced_limits, AnalysisOptions, AnalysisResult,
    AnalysisStats,
};
use crate::exec::SummaryView;
use crate::fault::FaultPlan;
use crate::ipp::build_summary;
use crate::summary::{Summary, SummaryDb};

/// The set of functions whose summaries a change invalidates: the changed
/// functions plus all their transitive callers.
#[must_use]
pub fn affected_functions(graph: &CallGraph, changed: &[&str]) -> HashSet<String> {
    let mut affected: HashSet<usize> = HashSet::new();
    let mut worklist: Vec<usize> =
        changed.iter().filter_map(|name| graph.index_of(name)).collect();
    while let Some(i) = worklist.pop() {
        if !affected.insert(i) {
            continue;
        }
        worklist.extend(graph.callers(i).iter().copied());
    }
    affected.into_iter().map(|i| graph.name(i).to_owned()).collect()
}

/// A name-level reverse call index kept resident across edits.
///
/// [`CallGraph::build`] walks every function body and re-allocates the
/// whole node table — an O(program) fixed cost that dwarfs the actual
/// re-analysis of a one-function edit on a large corpus. `rid serve`
/// instead keeps a `CallerIndex` resident next to the program and
/// updates it per edited module: [`remove_function`] the pre-edit
/// winners, [`add_function`] the post-edit ones, both O(module).
///
/// Unlike the call graph, the index is keyed by *called name*, whether
/// or not that name is currently defined. Call sites referencing a
/// not-yet-defined (or just-deleted) function are retained, so
/// [`CallerIndex::affected`] naturally invalidates the callers of a
/// deleted function, and of a brand-new function whose call sites
/// predate its definition — the two cases a defined-nodes-only graph
/// misses (see [`reanalyze`]'s deletion caveat).
///
/// [`remove_function`]: CallerIndex::remove_function
/// [`add_function`]: CallerIndex::add_function
#[derive(Clone, Debug, Default)]
pub struct CallerIndex {
    /// Called name (defined or not) → names of canonical (post
    /// weak-symbol-resolution) functions whose bodies call it.
    callers: HashMap<String, BTreeSet<String>>,
}

impl CallerIndex {
    /// Builds the index over a program's canonical function definitions.
    #[must_use]
    pub fn build(program: &Program) -> CallerIndex {
        let mut index = CallerIndex::default();
        for func in program.functions() {
            index.add_function(func);
        }
        index
    }

    /// Records `func`'s call edges. Call only for canonical definitions:
    /// a weak copy shadowed by another module never executes, so its
    /// call sites must not appear in the index.
    pub fn add_function(&mut self, func: &Function) {
        for callee in func.callees() {
            self.callers.entry(callee.to_owned()).or_default().insert(func.name().to_owned());
        }
    }

    /// Removes `func`'s call edges (the exact inverse of
    /// [`add_function`](CallerIndex::add_function) for the same body).
    pub fn remove_function(&mut self, func: &Function) {
        for callee in func.callees() {
            if let Some(callers) = self.callers.get_mut(callee) {
                callers.remove(func.name());
                if callers.is_empty() {
                    self.callers.remove(callee);
                }
            }
        }
    }

    /// The changed functions plus all their transitive callers — the
    /// same closure as [`affected_functions`], but O(cone) instead of
    /// O(program) because no graph is rebuilt. Deleted names invalidate
    /// their (former) callers too, since their call sites are retained.
    #[must_use]
    pub fn affected(&self, changed: &[&str]) -> HashSet<String> {
        let mut affected: HashSet<String> = HashSet::new();
        let mut worklist: Vec<&str> = changed.to_vec();
        while let Some(name) = worklist.pop() {
            if !affected.insert(name.to_owned()) {
                continue;
            }
            if let Some(callers) = self.callers.get(name) {
                worklist.extend(callers.iter().map(String::as_str));
            }
        }
        affected
    }

    /// The re-analysis plan for an edit: the affected set plus a
    /// callee-before-caller order over its defined members, computed
    /// from the affected functions' own bodies — O(cone), never
    /// O(program).
    #[must_use]
    pub fn plan(&self, program: &Program, changed: &[&str]) -> ReanalyzePlan {
        let affected = self.affected(changed);
        ReanalyzePlan::for_affected(program, affected)
    }

    /// The call edges as a deterministic callee-sorted list — the
    /// serialization surface `rid serve` snapshots use, so a restored
    /// daemon rebuilds the index by insertion instead of re-walking
    /// every function body in the program.
    #[must_use]
    pub fn edges(&self) -> Vec<(&str, &BTreeSet<String>)> {
        let mut edges: Vec<(&str, &BTreeSet<String>)> =
            self.callers.iter().map(|(callee, callers)| (callee.as_str(), callers)).collect();
        edges.sort_unstable_by_key(|(callee, _)| *callee);
        edges
    }

    /// Rebuilds an index from the pairs [`edges`](CallerIndex::edges)
    /// produced. Empty caller sets are dropped, matching the invariant
    /// [`remove_function`](CallerIndex::remove_function) maintains.
    pub fn from_edges(edges: impl IntoIterator<Item = (String, BTreeSet<String>)>) -> CallerIndex {
        let callers = edges.into_iter().filter(|(_, callers)| !callers.is_empty()).collect();
        CallerIndex { callers }
    }
}

/// What an incremental pass must redo: see [`CallerIndex::plan`].
#[derive(Clone, Debug)]
pub struct ReanalyzePlan {
    /// Every invalidated name (defined or not): the changed functions
    /// plus their transitive callers.
    pub affected: HashSet<String>,
    /// The defined members of `affected` in callee-before-caller order
    /// (cycles broken deterministically), the order
    /// [`reanalyze_with_plan`] re-summarizes them in.
    pub order: Vec<String>,
}

impl ReanalyzePlan {
    /// Orders the defined members of `affected` bottom-up by a DFS over
    /// their intra-cone call edges. Roots and children are visited in
    /// sorted name order, so the order is deterministic; a back edge
    /// (recursion) is skipped, breaking cycles arbitrarily but
    /// deterministically, like the full driver's SCC handling.
    fn for_affected(program: &Program, affected: HashSet<String>) -> ReanalyzePlan {
        let mut nodes: Vec<&str> = affected
            .iter()
            .map(String::as_str)
            .filter(|name| program.function(name).is_some())
            .collect();
        nodes.sort_unstable();
        let node_set: HashSet<&str> = nodes.iter().copied().collect();
        let children = |name: &str| -> Vec<&str> {
            let func = program.function(name).expect("plan nodes are defined");
            let mut callees: Vec<&str> =
                func.callees().filter(|c| node_set.contains(c)).collect();
            callees.sort_unstable();
            callees.dedup();
            callees
        };

        let mut order = Vec::with_capacity(nodes.len());
        let mut visited: HashSet<&str> = HashSet::new();
        for &root in &nodes {
            if visited.contains(root) {
                continue;
            }
            // Iterative post-order DFS: (node, remaining children).
            let mut stack: Vec<(&str, Vec<&str>)> = vec![(root, children(root))];
            visited.insert(root);
            while let Some((node, pending)) = stack.last_mut() {
                match pending.pop() {
                    Some(child) if visited.contains(child) => {}
                    Some(child) => {
                        visited.insert(child);
                        stack.push((child, children(child)));
                    }
                    None => {
                        order.push((*node).to_owned());
                        stack.pop();
                    }
                }
            }
        }
        ReanalyzePlan { affected, order }
    }

    /// The plan a full [`CallGraph`] implies: affected set via
    /// [`affected_functions`], order by filtering the graph's global
    /// reverse topological order down to the cone.
    #[must_use]
    pub fn from_graph(graph: &CallGraph, changed: &[&str]) -> ReanalyzePlan {
        let affected = affected_functions(graph, changed);
        let order = graph
            .reverse_topological_order()
            .into_iter()
            .map(|i| graph.name(i))
            .filter(|name| affected.contains(*name))
            .map(str::to_owned)
            .collect();
        ReanalyzePlan { affected, order }
    }
}

/// Re-analyzes `program` after `changed` functions were edited, reusing
/// the summaries of unaffected functions from `previous`.
///
/// `program` is the *post-edit* program; `previous` is the result of
/// analyzing the pre-edit program (or an earlier incremental pass).
/// Reports for unaffected functions are carried over verbatim; affected
/// functions are re-summarized and re-checked.
///
/// The result is equivalent to a full re-analysis whenever the edit only
/// touches the bodies of `changed` (the §5.4 use case: fixing a reported
/// inconsistency and rechecking its callers). When a *deleted* function's
/// callers should be invalidated, list the deleted name in `changed` too:
/// names absent from the new program contribute no callers of their own,
/// so also list the (former) callers explicitly in that case.
#[must_use]
pub fn reanalyze(
    program: &Program,
    predefined: &SummaryDb,
    previous: &AnalysisResult,
    changed: &[&str],
    options: &AnalysisOptions,
) -> AnalysisResult {
    let graph = CallGraph::build(program);
    reanalyze_with_graph(program, predefined, previous.clone(), changed, options, &graph)
}

/// [`reanalyze`] with a caller-supplied call graph of the *post-edit*
/// program, taking the previous result by value (its summary database
/// is reused in place, not cloned). Equivalent to
/// [`reanalyze_with_plan`] with [`ReanalyzePlan::from_graph`].
#[must_use]
pub fn reanalyze_with_graph(
    program: &Program,
    predefined: &SummaryDb,
    previous: AnalysisResult,
    changed: &[&str],
    options: &AnalysisOptions,
    graph: &CallGraph,
) -> AnalysisResult {
    let plan = ReanalyzePlan::from_graph(graph, changed);
    reanalyze_with_plan(program, predefined, previous, changed, options, &plan)
}

/// The incremental pass itself, driven by a pre-computed plan.
///
/// This is `rid serve`'s warm path, and every input is arranged so the
/// cost is proportional to the affected cone rather than the corpus:
/// `previous` is taken by value so its summary database becomes the new
/// result's database in place (affected entries evicted, nothing
/// cloned), and `plan` — typically from a resident
/// [`CallerIndex::plan`] — already knows the cone and its bottom-up
/// order, so no call graph is built here.
#[must_use]
pub fn reanalyze_with_plan(
    program: &Program,
    predefined: &SummaryDb,
    previous: AnalysisResult,
    changed: &[&str],
    options: &AnalysisOptions,
    plan: &ReanalyzePlan,
) -> AnalysisResult {
    let affected = &plan.affected;
    let AnalysisResult {
        reports: prev_reports,
        summaries: mut db,
        classification,
        stats: _,
        degraded: prev_degraded,
    } = previous;

    // The previous database *is* the starting point; evict the affected
    // cone (predefined entries stay — the driver never overwrote them)
    // and remember which evicted names had summaries: under selective
    // analysis that is the previous run's implicit decision to analyze.
    let mut had_summary: HashSet<String> = HashSet::new();
    for name in affected {
        if predefined.contains(name) {
            continue;
        }
        if db.remove(name).is_some() {
            had_summary.insert(name.clone());
        }
    }

    let changed_set: HashSet<&str> = changed.iter().copied().collect();
    let should_analyze = |name: &str| -> bool {
        if predefined.contains(name) {
            return false;
        }
        if !affected.contains(name) {
            return false;
        }
        if !options.selective {
            return true;
        }
        // Functions named in `changed` are always re-analyzed (they may
        // be brand new and absent from the previous classification).
        changed_set.contains(name)
            || had_summary.contains(name)
            || classification.category(name).is_analyzed()
    };

    let mut stats = AnalysisStats::default();
    let mut reports: Vec<crate::ipp::IppReport> = prev_reports
        .into_iter()
        .filter(|r| !affected.contains(&r.function))
        .collect();

    // Degradation records for unaffected functions are carried over, like
    // their reports; re-analyzed functions get fresh records below.
    let mut degraded: BTreeMap<String, Degradation> = prev_degraded
        .into_iter()
        .filter(|(name, _)| !affected.contains(name.as_str()))
        .collect();

    // Re-analysis runs under the same fault-tolerance regime as the full
    // driver: budgets are metered and a panicking function is retried
    // once with reduced limits, then degraded to the default summary.
    let faults = FaultPlan::none();
    let global_deadline = options.budget.global_deadline.map(|d| Instant::now() + d);
    for name in &plan.order {
        let name = name.as_str();
        let func = program.function(name).expect("plan orders defined functions");
        if !should_analyze(name) {
            continue;
        }
        let fuel = effective_fuel(&options.budget, &faults, name);
        let meter = BudgetMeter::start(&options.budget, global_deadline);
        let first = guarded_attempt(
            func,
            SummaryView::Db(&db),
            &options.limits,
            options.sat,
            &meter,
            fuel,
            &faults,
            0,
            options.exec_mode,
        );
        let first_ms = meter.elapsed().as_millis() as u64;
        let (attempt, forced, wall_ms) = match first {
            Ok(ok) => (Some(ok), None, first_ms),
            Err(()) => {
                let meter = BudgetMeter::start(&options.budget, global_deadline);
                let retry = guarded_attempt(
                    func,
                    SummaryView::Db(&db),
                    &reduced_limits(&options.limits),
                    options.sat,
                    &meter,
                    fuel,
                    &faults,
                    1,
                    options.exec_mode,
                );
                let total = first_ms + meter.elapsed().as_millis() as u64;
                (retry.ok(), Some(DegradeReason::Retried), total)
            }
        };
        match attempt {
            Some((outcome, mut ipp)) => {
                let mut callees: Vec<String> =
                    func.callees().map(str::to_owned).collect();
                callees.sort();
                callees.dedup();
                for report in &mut ipp.reports {
                    if let Some(p) = report.provenance.as_mut() {
                        p.callees = callees.clone();
                    }
                }
                let summary = build_summary(name, &outcome.path_entries, &ipp, outcome.partial);
                stats.record_outcome(&outcome);
                reports.extend(ipp.reports);
                db.insert(summary);
                if let Some(reason) = forced.or(outcome.degrade) {
                    let cost = FunctionCost {
                        paths: outcome.paths_enumerated,
                        states: outcome.states_explored,
                        wall_ms,
                    };
                    crate::budget::trace_degradation(name, reason);
                    degraded.insert(name.to_owned(), Degradation { reason, cost });
                }
            }
            None => {
                db.insert(Summary::default_for(name));
                stats.functions_analyzed += 1;
                stats.functions_partial += 1;
                let cost = FunctionCost { paths: 0, states: 0, wall_ms };
                crate::budget::trace_degradation(name, DegradeReason::Panic);
                degraded.insert(
                    name.to_owned(),
                    Degradation { reason: DegradeReason::Panic, cost },
                );
            }
        }
    }

    // Extensions follow the main pass: re-check affected callbacks with
    // the return-value-blind contract when the option is on (mirrors
    // `analyze_program`).
    if options.check_callbacks {
        let model = crate::callbacks::CallbackModel::linux_default();
        let callbacks = crate::callbacks::collect_callbacks(program, &model);
        let existing: HashSet<(String, String)> = reports
            .iter()
            .map(|r| (r.function.clone(), r.refcount.to_string()))
            .collect();
        for name in callbacks {
            if !affected.contains(&name) {
                continue; // carried-over callback reports are still valid
            }
            let Some(func) = program.function(&name) else { continue };
            for report in crate::callbacks::check_callback_function(
                func,
                &db,
                &options.limits,
                options.sat,
            ) {
                if !existing.contains(&(report.function.clone(), report.refcount.to_string()))
                {
                    reports.push(report);
                }
            }
        }
    }

    // Second-stage refutation over the merged (carried-over + recomputed)
    // reports. Re-judging carried-over reports is deterministic, so their
    // verdicts match the full run's — patched state diffs stay clean.
    if options.refute {
        crate::refute::refute_pass(&db, options.budget.solver_fuel, &mut reports, &mut stats);
    }

    stats.functions_total = program.function_count();
    reports.sort_by(|a, b| {
        (&a.function, &a.refcount, a.path_a, a.path_b).cmp(&(
            &b.function,
            &b.refcount,
            b.path_a,
            b.path_b,
        ))
    });

    AnalysisResult { reports, summaries: db, classification, stats, degraded }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::linux_dpm_apis;
    use crate::driver::analyze_sources;
    use rid_frontend::parse_program;

    const LIB_BUGGY: &str = r#"module lib;
        fn helper(dev) {
            let r = check(dev);
            if (r < 0) { return 0; }
            pm_runtime_get_sync(dev);
            return 0;
        }"#;

    const LIB_FIXED: &str = r#"module lib;
        fn helper(dev) {
            let r = check(dev);
            if (r < 0) { return -1; }
            pm_runtime_get_sync(dev);
            return 0;
        }"#;

    const APP: &str = r#"module app;
        fn caller(dev) {
            let st = helper(dev);
            if (st) { return 0; }
            pm_runtime_put(dev);
            return 0;
        }
        fn unrelated(dev) {
            pm_runtime_get_sync(dev);
            return 0;
        }"#;

    #[test]
    fn affected_set_is_transitive_callers() {
        let program = parse_program([LIB_BUGGY, APP]).unwrap();
        let graph = CallGraph::build(&program);
        let affected = affected_functions(&graph, &["helper"]);
        assert!(affected.contains("helper"));
        assert!(affected.contains("caller"));
        assert!(!affected.contains("unrelated"));
    }

    #[test]
    fn recheck_after_fix_matches_full_reanalysis() {
        let options = AnalysisOptions::default();
        let apis = linux_dpm_apis();

        let before = analyze_sources([LIB_BUGGY, APP], &apis, &options).unwrap();
        // The buggy helper is reported (both paths return 0).
        assert!(before.reports.iter().any(|r| r.function == "helper"));

        // Fix helper; re-analyze incrementally.
        let fixed_program = parse_program([LIB_FIXED, APP]).unwrap();
        let incremental =
            reanalyze(&fixed_program, &apis, &before, &["helper"], &options);
        let full = analyze_sources([LIB_FIXED, APP], &apis, &options).unwrap();

        let key = |r: &crate::ipp::IppReport| (r.function.clone(), r.refcount.clone());
        let a: Vec<_> = incremental.reports.iter().map(key).collect();
        let b: Vec<_> = full.reports.iter().map(key).collect();
        assert_eq!(a, b);
        // Helper's report is gone after the fix.
        assert!(incremental.reports.iter().all(|r| r.function != "helper"));
    }

    #[test]
    fn unaffected_functions_are_not_reanalyzed() {
        let options = AnalysisOptions::default();
        let apis = linux_dpm_apis();
        let before = analyze_sources([LIB_BUGGY, APP], &apis, &options).unwrap();
        let fixed_program = parse_program([LIB_FIXED, APP]).unwrap();
        let incremental =
            reanalyze(&fixed_program, &apis, &before, &["helper"], &options);
        // Only helper and caller are re-summarized, not `unrelated`.
        assert_eq!(incremental.stats.functions_analyzed, 2);
        // `unrelated`'s summary is carried over.
        assert!(incremental.summaries.get("unrelated").is_some());
    }

    #[test]
    fn callback_extension_applies_during_recheck() {
        let options = AnalysisOptions { check_callbacks: true, ..Default::default() };
        let apis = linux_dpm_apis();
        // v1: balanced IRQ handler, registered — clean.
        let v1 = r#"module m;
            fn irq_handler(irq, data) {
                let ret = pm_runtime_get_sync(data.dev);
                if (ret < 0) { pm_runtime_put(data.dev); return 0; }
                pm_runtime_put(data.dev);
                return 1;
            }
            fn setup(dev) { request_irq(dev.irq, @irq_handler, dev); return 0; }"#;
        let before = analyze_sources([v1], &apis, &options).unwrap();
        assert!(before.reports.is_empty(), "{:?}", before.reports);

        // v2: the edit breaks the error path (Figure 10 shape).
        let v2 = r#"module m;
            fn irq_handler(irq, data) {
                let ret = pm_runtime_get_sync(data.dev);
                if (ret < 0) { return 0; }
                pm_runtime_put(data.dev);
                return 1;
            }
            fn setup(dev) { request_irq(dev.irq, @irq_handler, dev); return 0; }"#;
        let program = parse_program([v2]).unwrap();
        let after = reanalyze(&program, &apis, &before, &["irq_handler"], &options);
        assert!(
            after.reports.iter().any(|r| r.function == "irq_handler" && r.callback),
            "callback bug introduced by the edit must surface: {:?}",
            after.reports
        );
    }

    #[test]
    fn new_function_listed_in_changed_is_analyzed() {
        let options = AnalysisOptions::default();
        let apis = linux_dpm_apis();
        let before = analyze_sources([LIB_BUGGY, APP], &apis, &options).unwrap();
        // The edit adds a brand-new buggy function.
        let app_v2 = r#"module app;
            fn caller(dev) {
                let st = helper(dev);
                if (st) { return 0; }
                pm_runtime_put(dev);
                return 0;
            }
            fn unrelated(dev) {
                pm_runtime_get_sync(dev);
                return 0;
            }
            fn fresh_bug(dev) {
                let r = probe(dev);
                if (r < 0) { return 0; }
                pm_runtime_get_sync(dev);
                return 0;
            }"#;
        let program = parse_program([LIB_BUGGY, app_v2]).unwrap();
        let after = reanalyze(&program, &apis, &before, &["fresh_bug"], &options);
        assert!(
            after.reports.iter().any(|r| r.function == "fresh_bug"),
            "new function must be analyzed: {:?}",
            after.reports
        );
    }

    #[test]
    fn caller_index_matches_graph_affected_set() {
        let program = parse_program([LIB_BUGGY, APP]).unwrap();
        let graph = CallGraph::build(&program);
        let index = CallerIndex::build(&program);
        assert_eq!(affected_functions(&graph, &["helper"]), index.affected(&["helper"]));
        assert_eq!(affected_functions(&graph, &["caller"]), index.affected(&["caller"]));
    }

    #[test]
    fn caller_index_invalidates_callers_of_deleted_and_undefined_names() {
        // `caller` calls `helper`; once helper is deleted, the graph
        // has no node for it, but the index retains the call site, so
        // the deletion still invalidates `caller`.
        let app_only = parse_program([APP]).unwrap();
        let index = CallerIndex::build(&app_only);
        let affected = index.affected(&["helper"]);
        assert!(affected.contains("helper"));
        assert!(affected.contains("caller"));
        assert!(!affected.contains("unrelated"));
    }

    #[test]
    fn caller_index_updates_in_place() {
        let program = parse_program([LIB_BUGGY, APP]).unwrap();
        let mut index = CallerIndex::build(&program);
        // Retire caller's edges: helper loses its only caller.
        index.remove_function(program.function("caller").unwrap());
        assert_eq!(index.affected(&["helper"]), ["helper".to_owned()].into());
        // Re-adding restores the original closure.
        index.add_function(program.function("caller").unwrap());
        assert_eq!(index.affected(&["helper"]), CallerIndex::build(&program).affected(&["helper"]));
    }

    #[test]
    fn plan_orders_callees_before_callers() {
        let program = parse_program([LIB_BUGGY, APP]).unwrap();
        let index = CallerIndex::build(&program);
        let plan = index.plan(&program, &["helper"]);
        assert_eq!(plan.order, vec!["helper".to_owned(), "caller".to_owned()]);
        // And it matches the full-graph plan for a pure body edit.
        let graph = CallGraph::build(&program);
        let from_graph = ReanalyzePlan::from_graph(&graph, &["helper"]);
        assert_eq!(plan.order, from_graph.order);
        assert_eq!(plan.affected, from_graph.affected);
    }

    #[test]
    fn plan_based_recheck_matches_graph_based_recheck() {
        let options = AnalysisOptions::default();
        let apis = linux_dpm_apis();
        let before = analyze_sources([LIB_BUGGY, APP], &apis, &options).unwrap();
        let fixed_program = parse_program([LIB_FIXED, APP]).unwrap();

        let via_graph = reanalyze(&fixed_program, &apis, &before, &["helper"], &options);
        let index = CallerIndex::build(&fixed_program);
        let plan = index.plan(&fixed_program, &["helper"]);
        let via_plan = reanalyze_with_plan(
            &fixed_program,
            &apis,
            before.clone(),
            &["helper"],
            &options,
            &plan,
        );
        let key = |r: &crate::ipp::IppReport| (r.function.clone(), r.refcount.clone());
        assert_eq!(
            via_plan.reports.iter().map(key).collect::<Vec<_>>(),
            via_graph.reports.iter().map(key).collect::<Vec<_>>()
        );
        assert_eq!(via_plan.stats.functions_analyzed, via_graph.stats.functions_analyzed);
        assert_eq!(via_plan.summaries.len(), via_graph.summaries.len());
    }

    #[test]
    fn recheck_reveals_hidden_caller_inconsistency() {
        // §5.4's scenario: the dropped path in the callee hides a caller
        // bug; after the callee fix the caller's own inconsistency
        // surfaces.
        let lib_buggy = r#"module lib;
            fn get_ref(dev) {
                let r = probe(dev);
                if (r < 0) { return 0; }
                pm_runtime_get_sync(dev);
                return 0;
            }"#;
        let lib_fixed = r#"module lib;
            fn get_ref(dev) {
                pm_runtime_get_sync(dev);
                let r = probe(dev);
                if (r < 0) { pm_runtime_put(dev); return -1; }
                return 0;
            }"#;
        let app = r#"module app;
            fn caller(dev) {
                let st = get_ref(dev);
                if (st < 0) { return 0; }
                let u = use_dev(dev);
                if (u < 0) { return 0; }   // BUG: put skipped
                pm_runtime_put(dev);
                return 0;
            }"#;
        let options = AnalysisOptions::default();
        let apis = linux_dpm_apis();
        let before = analyze_sources([lib_buggy, app], &apis, &options).unwrap();
        // Before the fix, get_ref itself is inconsistent and was reported.
        assert!(before.reports.iter().any(|r| r.function == "get_ref"));

        let fixed_program = parse_program([lib_fixed, app]).unwrap();
        let after = reanalyze(&fixed_program, &apis, &before, &["get_ref"], &options);
        assert!(after.reports.iter().all(|r| r.function != "get_ref"));
        assert!(
            after.reports.iter().any(|r| r.function == "caller"),
            "caller inconsistency must surface after the fix: {:?}",
            after.reports
        );
    }
}
