//! Syntactic refcount-API discovery (§3.1 of the paper).
//!
//! The paper identifies its 800+ sets of refcount APIs (1600+ functions)
//! in Linux by *"a syntactical search for functions with similar names
//! except some common antonyms such as 'inc'-'dec' and 'get'-'put'"*,
//! and observes that 93.5% of kernel files call these APIs directly or
//! indirectly. This module reproduces that mechanism:
//!
//! * [`discover_api_pairs`] scans every function name (definitions and
//!   externs) for antonym pairs;
//! * [`summaries_for_pairs`] synthesizes predefined summaries (`+1`/`−1`
//!   on a field of the first argument) so discovered pairs can seed the
//!   analysis without hand-written specifications;
//! * [`modules_touching`] measures the fraction of modules that reach the
//!   APIs directly or transitively — the paper's 93.5% statistic.
//!
//! Discovery is heuristic by design: a `get`/`put` name pair is *likely*
//! a refcount API, not certainly one. The paper hand-validated its 800
//! sets; here discovered summaries are meant as a starting inventory to
//! be reviewed (or used as-is in exploratory scans).

use std::collections::{BTreeMap, BTreeSet, HashSet};

use rid_ir::{Module, Program};
use serde::{Deserialize, Serialize};

use crate::apis::PredefinedBuilder;
use crate::summary::SummaryDb;

/// The antonym table used for discovery (the paper names 'inc'-'dec' and
/// 'get'-'put'; the rest are the usual kernel resource-management verbs).
pub const ANTONYMS: &[(&str, &str)] = &[
    ("get", "put"),
    ("inc", "dec"),
    ("acquire", "release"),
    ("ref", "unref"),
    ("grab", "drop"),
    ("lock", "unlock"),
    ("enable", "disable"),
    ("hold", "rele"),
];

/// A discovered increment/decrement API pair.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ApiPair {
    /// The incrementing function (e.g. `usb_autopm_get`).
    pub inc: String,
    /// The decrementing function (e.g. `usb_autopm_put`).
    pub dec: String,
    /// The antonym pair that matched.
    pub verbs: (String, String),
}

/// Splits a function name into `_`-separated words.
fn words(name: &str) -> Vec<&str> {
    name.split('_').filter(|w| !w.is_empty()).collect()
}

/// If exactly one word of `a` and `b` differs and that difference is an
/// antonym pair, returns the pair (oriented inc-first).
fn match_names(a: &str, b: &str) -> Option<(&'static str, &'static str, bool)> {
    let wa = words(a);
    let wb = words(b);
    if wa.len() != wb.len() {
        return None;
    }
    let mut diff = None;
    for (x, y) in wa.iter().zip(&wb) {
        if x == y {
            continue;
        }
        if diff.is_some() {
            return None; // more than one differing word
        }
        diff = Some((*x, *y));
    }
    let (x, y) = diff?;
    for &(inc, dec) in ANTONYMS {
        if x == inc && y == dec {
            return Some((inc, dec, true));
        }
        if x == dec && y == inc {
            return Some((inc, dec, false));
        }
    }
    None
}

/// Discovers antonym-named function pairs among `names`.
///
/// # Examples
///
/// ```
/// use rid_core::mining::discover_api_pairs;
///
/// let names = ["usb_autopm_get", "usb_autopm_put", "kmalloc", "spi_ref", "spi_unref"];
/// let pairs = discover_api_pairs(names.iter().copied());
/// assert_eq!(pairs.len(), 2);
/// assert_eq!(pairs[0].inc, "spi_ref");
/// assert_eq!(pairs[1].inc, "usb_autopm_get");
/// ```
pub fn discover_api_pairs<'a>(names: impl IntoIterator<Item = &'a str>) -> Vec<ApiPair> {
    let names: BTreeSet<&str> = names.into_iter().collect();
    // Index by word count to keep the pairing quadratic only per bucket.
    let mut buckets: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
    for name in &names {
        buckets.entry(words(name).len()).or_default().push(name);
    }
    let mut pairs = BTreeSet::new();
    for bucket in buckets.values() {
        for (i, a) in bucket.iter().enumerate() {
            for b in &bucket[i + 1..] {
                if let Some((inc_verb, dec_verb, a_is_inc)) = match_names(a, b) {
                    let (inc, dec) = if a_is_inc { (*a, *b) } else { (*b, *a) };
                    pairs.insert(ApiPair {
                        inc: inc.to_owned(),
                        dec: dec.to_owned(),
                        verbs: (inc_verb.to_owned(), dec_verb.to_owned()),
                    });
                }
            }
        }
    }
    pairs.into_iter().collect()
}

/// Every function name appearing in a program: definitions plus callees
/// (externs included).
#[must_use]
pub fn all_function_names(program: &Program) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for func in program.functions() {
        names.insert(func.name().to_owned());
        for callee in func.callees() {
            names.insert(callee.to_owned());
        }
    }
    names
}

/// Synthesizes predefined summaries for discovered pairs: `inc` adds `+1`
/// and `dec` adds `−1` to `arg0.<field>`.
#[must_use]
pub fn summaries_for_pairs(pairs: &[ApiPair], field: &str) -> SummaryDb {
    let mut db = SummaryDb::new();
    for pair in pairs {
        db.insert(
            PredefinedBuilder::new(pair.inc.clone())
                .entry(|e| e.change_arg_field(0, field, 1).ret_any())
                .build(),
        );
        db.insert(
            PredefinedBuilder::new(pair.dec.clone())
                .entry(|e| e.change_arg_field(0, field, -1).ret_any())
                .build(),
        );
    }
    db
}

/// Counts modules that call the given APIs directly or indirectly
/// (through functions defined in any module) — the paper's "10987 out of
/// 11755 (93.5%) files" statistic (§3.1).
///
/// Returns `(touching, total)`.
#[must_use]
pub fn modules_touching(modules: &[Module], api_names: &HashSet<&str>) -> (usize, usize) {
    // Compute the set of *functions* that transitively reach an API, then
    // mark modules containing any such function.
    let mut program = Program::new();
    for module in modules {
        // Duplicate strong definitions across modules would fail to link;
        // for the census we only need names, so skip failures.
        let _ = program.link(module.clone());
    }
    let graph = crate::callgraph::CallGraph::build(&program);
    let mut reaches: Vec<bool> = vec![false; graph.len()];
    for i in graph.reverse_topological_order() {
        let direct = graph.unknown_callees(i).iter().any(|c| api_names.contains(c.as_str()))
            || api_names.contains(graph.name(i));
        let via = graph.callees(i).iter().any(|&j| reaches[j]);
        if direct || via {
            reaches[i] = true;
        }
    }
    let touching = modules
        .iter()
        .filter(|m| {
            m.functions().iter().any(|f| {
                graph.index_of(f.name()).is_some_and(|i| reaches[i])
            })
        })
        .count();
    (touching, modules.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_frontend::parse_module;

    #[test]
    fn antonym_matching() {
        assert!(match_names("dev_get", "dev_put").is_some());
        assert!(match_names("kref_inc", "kref_dec").is_some());
        // Orientation: put-first input still yields inc-first pair.
        let (_, _, a_is_inc) = match_names("dev_put", "dev_get").unwrap();
        assert!(!a_is_inc);
        // More than one differing word: no match.
        assert!(match_names("usb_get_dev", "pci_put_card").is_none());
        // Different word counts: no match.
        assert!(match_names("dev_get", "dev_get_sync").is_none());
        // Unrelated names: no match.
        assert!(match_names("kmalloc", "kfree").is_none());
    }

    #[test]
    fn discovery_is_deterministic_and_sorted() {
        let names = ["b_get", "b_put", "a_ref", "a_unref", "a_ref_fast"];
        let pairs = discover_api_pairs(names.iter().copied());
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].inc, "a_ref");
        assert_eq!(pairs[0].dec, "a_unref");
        assert_eq!(pairs[1].verbs, ("get".to_owned(), "put".to_owned()));
    }

    #[test]
    fn synthesized_summaries_change_refcounts() {
        let pairs = discover_api_pairs(["kref_get", "kref_put"]);
        let db = summaries_for_pairs(&pairs, "refs");
        assert!(db.get("kref_get").unwrap().changes_refcounts());
        assert!(db.get("kref_put").unwrap().changes_refcounts());
        let seeds: Vec<&str> = db.refcount_changing_names().collect();
        assert_eq!(seeds.len(), 2);
    }

    #[test]
    fn discovered_apis_drive_the_analysis() {
        // Mine the pair from the program itself, synthesize summaries,
        // and find a bug with zero hand-written specifications.
        let src = r#"module m;
            extern fn kref_get;
            extern fn kref_put;
            fn lose(obj) {
                kref_get(obj);
                let st = probe(obj);
                if (st < 0) { return 0; }
                kref_put(obj);
                return 0;
            }"#;
        let program = rid_frontend::parse_program([src]).unwrap();
        let pairs =
            discover_api_pairs(all_function_names(&program).iter().map(String::as_str));
        assert_eq!(pairs.len(), 1);
        let apis = summaries_for_pairs(&pairs, "refs");
        let result = crate::driver::analyze_program(
            &program,
            &apis,
            &crate::driver::AnalysisOptions::default(),
        );
        assert_eq!(result.reports.len(), 1);
        assert_eq!(result.reports[0].function, "lose");
    }

    #[test]
    fn module_census() {
        let touching = parse_module(
            "module a; fn f(dev) { pm_runtime_get(dev); return; }",
        )
        .unwrap();
        let indirect = parse_module("module b; fn g(dev) { f(dev); return; }").unwrap();
        let unrelated = parse_module("module c; fn h() { return; }").unwrap();
        let apis: HashSet<&str> = ["pm_runtime_get"].into_iter().collect();
        let (count, total) = modules_touching(&[touching, indirect, unrelated], &apis);
        assert_eq!((count, total), (2, 3));
    }
}
