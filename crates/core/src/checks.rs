//! Pluggable stronger-property checks on function summaries.
//!
//! §4.5 of the paper: *"If the program under analysis respect other
//! rules, a corresponding check on the refcount changes in the function
//! summary can be added."* IPP checking needs no assumption about how a
//! function should change refcounts; but when the program is known to
//! follow a stronger discipline, extra rules catch single-path bugs that
//! have no inconsistent pair. Two published rules are provided:
//!
//! * [`SummaryRule::EscapeRule`] — Cpychecker/Pungi (§2.1): a refcount
//!   must change by exactly the number of references escaping the
//!   function (here: `+1` if the count is rooted at the return slot,
//!   else `0`). False-alarms on intentional wrappers, as §2.1 warns.
//! * [`SummaryRule::ClosedBalance`] — Lal & Ramalingam (§2.1): in a
//!   *closed* program every entry function must leave every refcount
//!   unchanged. Too strong for libraries ("it is too strong to assume
//!   that all entry functions in open programs like libraries must leave
//!   all refcounts unchanged"), which is why it is opt-in per function
//!   set.

use rid_solver::{Term, VarKind};
use serde::{Deserialize, Serialize};

use crate::summary::Summary;

/// A stronger-than-IPP rule checked against a function summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SummaryRule {
    /// Refcount delta must equal the escaping reference count
    /// (Cpychecker / Pungi, §2.1).
    EscapeRule,
    /// Every refcount must balance to zero (closed-program entry points,
    /// Lal & Ramalingam, §2.1).
    ClosedBalance,
}

/// A violation of a [`SummaryRule`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleViolation {
    /// The rule violated.
    pub rule: SummaryRule,
    /// Function whose summary violates it.
    pub function: String,
    /// Index of the offending summary entry.
    pub entry_index: usize,
    /// The refcount with the unexpected change.
    pub refcount: Term,
    /// Observed net change.
    pub delta: i64,
    /// Change the rule allows.
    pub expected: i64,
}

/// Checks one summary against a rule.
///
/// # Examples
///
/// ```
/// use rid_core::checks::{check_summary, SummaryRule};
/// use rid_core::apis::linux_dpm_apis;
///
/// // pm_runtime_get_sync always leaves +1 behind: a wrapper by design,
/// // and exactly the kind of function the escape rule false-alarms on.
/// let db = linux_dpm_apis();
/// let get = db.get("pm_runtime_get_sync").unwrap();
/// let violations = check_summary(get, SummaryRule::EscapeRule);
/// assert_eq!(violations.len(), 1);
/// ```
#[must_use]
pub fn check_summary(summary: &Summary, rule: SummaryRule) -> Vec<RuleViolation> {
    let mut violations = Vec::new();
    for (entry_index, entry) in summary.entries.iter().enumerate() {
        for (rc, &delta) in &entry.changes {
            let expected = match rule {
                SummaryRule::ClosedBalance => 0,
                SummaryRule::EscapeRule => {
                    let escapes =
                        rc.root_var().is_some_and(|root| root.kind == VarKind::Ret);
                    i64::from(escapes)
                }
            };
            if delta != expected {
                violations.push(RuleViolation {
                    rule,
                    function: summary.func.as_str().to_owned(),
                    entry_index,
                    refcount: rc.clone(),
                    delta,
                    expected,
                });
            }
        }
    }
    violations
}

/// Checks every summary in a database against a rule, skipping the names
/// in `exempt` (e.g. the predefined APIs themselves, whose whole purpose
/// is to change counts).
#[must_use]
pub fn check_database(
    db: &crate::summary::SummaryDb,
    rule: SummaryRule,
    exempt: &dyn Fn(&str) -> bool,
) -> Vec<RuleViolation> {
    let mut violations = Vec::new();
    for summary in db.iter() {
        if exempt(&summary.func) {
            continue;
        }
        violations.extend(check_summary(summary, rule));
    }
    violations.sort_by(|a, b| {
        (&a.function, a.entry_index, &a.refcount).cmp(&(&b.function, b.entry_index, &b.refcount))
    });
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::{linux_dpm_apis, python_c_apis};
    use crate::driver::{analyze_sources, AnalysisOptions};

    fn summaries_for(src: &str, apis: &crate::summary::SummaryDb) -> crate::SummaryDb {
        analyze_sources([src], apis, &AnalysisOptions::default()).unwrap().summaries
    }

    #[test]
    fn escape_rule_accepts_returned_references() {
        let db = summaries_for(
            "module m; fn fresh() { let o = PyList_New(0); return o; }",
            &python_c_apis(),
        );
        let summary = db.get("fresh").unwrap();
        assert!(check_summary(summary, SummaryRule::EscapeRule).is_empty());
    }

    #[test]
    fn escape_rule_flags_single_path_leak() {
        // No IPP exists, but the stronger rule catches it on the summary.
        let db = summaries_for(
            "module m; fn cache(obj, t) { Py_INCREF(obj); store(t, obj); return 0; }",
            &python_c_apis(),
        );
        let summary = db.get("cache").unwrap();
        let violations = check_summary(summary, SummaryRule::EscapeRule);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].delta, 1);
        assert_eq!(violations[0].expected, 0);
    }

    #[test]
    fn closed_balance_flags_any_change() {
        let db = summaries_for(
            "module m; fn entry(dev) { pm_runtime_get_sync(dev); return 0; }",
            &linux_dpm_apis(),
        );
        let summary = db.get("entry").unwrap();
        assert_eq!(check_summary(summary, SummaryRule::ClosedBalance).len(), 1);
        // The escape rule also flags it (arg-rooted +1).
        assert_eq!(check_summary(summary, SummaryRule::EscapeRule).len(), 1);
    }

    #[test]
    fn closed_balance_accepts_balanced_entry() {
        let db = summaries_for(
            "module m; fn entry(dev) { pm_runtime_get_sync(dev); pm_runtime_put(dev); return 0; }",
            &linux_dpm_apis(),
        );
        let summary = db.get("entry").unwrap();
        assert!(check_summary(summary, SummaryRule::ClosedBalance).is_empty());
    }

    #[test]
    fn database_check_with_exemptions() {
        let apis = linux_dpm_apis();
        let db = summaries_for(
            "module m; fn wrapper(dev) { pm_runtime_get_sync(dev); return 0; }",
            &apis,
        );
        // Without exemptions the predefined APIs themselves violate both
        // rules; exempting them leaves just the wrapper.
        let all = check_database(&db, SummaryRule::ClosedBalance, &|_| false);
        let exempted = check_database(&db, SummaryRule::ClosedBalance, &|f| apis.contains(f));
        assert!(all.len() > exempted.len());
        assert_eq!(exempted.len(), 1);
        assert_eq!(exempted[0].function, "wrapper");
    }
}
