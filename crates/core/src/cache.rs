//! Persistent content-addressed summary cache.
//!
//! The paper's §5.4 incremental-recheck idea — "reuse previously
//! calculated summaries of unaffected functions" — generalized to
//! cross-*run* caching: every non-degraded function summary (plus its IPP
//! reports) is stored under a **merkle-style content key**, so a warm
//! re-run of an unchanged corpus skips summarization and checking
//! entirely, and an edit invalidates exactly the edited function's
//! transitive-caller cone — the same frontier
//! [`crate::incremental::affected_functions`] computes.
//!
//! ## Key discipline
//!
//! Keys are computed per call-graph SCC, in reverse topological order:
//!
//! ```text
//! comp_key(C) = H(salt, content(m) for m in members(C) in index order,
//!                 comp_key(D) for D in callee_comps(C))
//! key(f)      = comp_key(component of f)
//! ```
//!
//! `content(f)` hashes the function's lowered IR structurally, which
//! covers its body *and* the names of everything it calls; the callee keys
//! make a change propagate to every transitive caller. SCC granularity is
//! exact, not an approximation: within an SCC every member transitively
//! calls every other, so `affected_functions` of any member contains the
//! whole component. The `salt` folds in everything else a summary depends
//! on — the analysis limits (block-visit counts shape symbolic names),
//! solver options, the selective flag (it decides which callees have
//! summaries at all), and the predefined API database (§5.1 summaries
//! seed classification and shadow definitions).
//!
//! Deliberately *not* in the key: thread count and execution mode (both
//! are bit-for-bit output-preserving, see the differential suite) and the
//! budgets. Budgets are sound to omit **because degraded summaries are
//! never cached**: a budget can only change the result of a run by
//! degrading it, and degraded functions are always recomputed.
//!
//! Keys are 128-bit FNV-1a over 8-byte words — collisions are not a
//! practical concern at corpus scale, and the hash is stable across runs
//! of the same build on the same platform (integer fields hash in native
//! endianness), which is exactly the lifetime of an on-disk cache file.

use std::collections::BTreeMap;

use rid_ir::{Function, Inst, Operand, Pred, Rvalue, Terminator};
use serde::{Deserialize, Serialize};

use crate::callgraph::Condensation;
use crate::driver::AnalysisOptions;
use crate::ipp::IppReport;
use crate::summary::{Summary, SummaryDb};

/// Schema tag stored in (and validated against) persisted cache files.
/// v5: `ReportProvenance` gained the refutation-verdict field (v4 switched
/// content hashing to an explicit intern-order-independent structural
/// walk, v3 added explainability provenance, v2 block traces). Cached
/// reports are *stage-one* reports — the refutation pass runs after cache
/// write-back, so the `refute` flag is deliberately not key material.
pub const CACHE_SCHEMA: &str = "rid-summary-cache/v5";

/// 128-bit FNV-1a.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fnv128(u128);

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Fnv128 {
    pub(crate) fn new() -> Fnv128 {
        Fnv128(FNV_OFFSET)
    }

    /// Folds `bytes` in 8-byte words (one 128-bit multiply per word
    /// instead of per byte — warm-run keying hashes the whole active
    /// cone's IR text, so this is on the cache's critical path). The
    /// result depends on call boundaries as well as content; callers
    /// that need boundary-independence buffer upstream (see
    /// [`HashWriter`]), and determinism — the only property keys need —
    /// holds either way.
    pub(crate) fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.0 ^= u128::from(word);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Length-tag the padded tail so "ab" and "ab\0" differ.
            self.0 ^= u128::from(u64::from_le_bytes(tail))
                ^ (u128::from(rem.len() as u64) << 64);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn finish(self) -> u128 {
        self.0
    }
}

// --- Explicit structural walk over the IR -------------------------------
//
// Content hashing must NOT go through the IR types' derived
// `std::hash::Hash` impls: `Sym` hashes by its 4-byte handle id, and
// handle ids depend on first-touch intern order, which differs between
// processes (a cold parse interns in source order; a snapshot restore
// interns in whatever order the snapshot replays). Persisted merkle keys
// must be identical across those, so every name below is resolved to its
// text and hashed as length-prefixed bytes. Enum variants are tagged with
// explicit discriminant bytes — the layout is part of [`CACHE_SCHEMA`].

fn hash_str(h: &mut Fnv128, s: &str) {
    h.write_u64(s.len() as u64);
    h.write(s.as_bytes());
}

fn hash_operand(h: &mut Fnv128, op: &Operand) {
    match op {
        Operand::Var(v) => {
            h.write(&[0]);
            hash_str(h, v);
        }
        Operand::Int(n) => {
            h.write(&[1]);
            h.write_u64(*n as u64);
        }
        Operand::Bool(b) => h.write(&[2, u8::from(*b)]),
        Operand::Null => h.write(&[3]),
        Operand::FuncRef(f) => {
            h.write(&[4]);
            hash_str(h, f);
        }
    }
}

fn hash_pred(h: &mut Fnv128, pred: Pred) {
    h.write(&[match pred {
        Pred::Eq => 0,
        Pred::Ne => 1,
        Pred::Lt => 2,
        Pred::Le => 3,
        Pred::Gt => 4,
        Pred::Ge => 5,
    }]);
}

fn hash_rvalue(h: &mut Fnv128, rv: &Rvalue) {
    match rv {
        Rvalue::Use(op) => {
            h.write(&[0]);
            hash_operand(h, op);
        }
        Rvalue::FieldLoad { base, field } => {
            h.write(&[1]);
            hash_str(h, base);
            hash_str(h, field);
        }
        Rvalue::Random => h.write(&[2]),
        Rvalue::Cmp { pred, lhs, rhs } => {
            h.write(&[3]);
            hash_pred(h, *pred);
            hash_operand(h, lhs);
            hash_operand(h, rhs);
        }
        Rvalue::Call { callee, args } => {
            h.write(&[4]);
            hash_str(h, callee);
            h.write_u64(args.len() as u64);
            for a in args {
                hash_operand(h, a);
            }
        }
    }
}

fn hash_inst(h: &mut Fnv128, inst: &Inst) {
    match inst {
        Inst::Assign { dst, rvalue } => {
            h.write(&[0]);
            hash_str(h, dst);
            hash_rvalue(h, rvalue);
        }
        Inst::Call { callee, args } => {
            h.write(&[1]);
            hash_str(h, callee);
            h.write_u64(args.len() as u64);
            for a in args {
                hash_operand(h, a);
            }
        }
        Inst::Assume { pred, lhs, rhs } => {
            h.write(&[2]);
            hash_pred(h, *pred);
            hash_operand(h, lhs);
            hash_operand(h, rhs);
        }
        Inst::FieldStore { base, field, value } => {
            h.write(&[3]);
            hash_str(h, base);
            hash_str(h, field);
            hash_operand(h, value);
        }
    }
}

fn hash_term(h: &mut Fnv128, term: &Terminator) {
    match term {
        Terminator::Jump(bb) => {
            h.write(&[0]);
            h.write_u64(u64::from(bb.0));
        }
        Terminator::Branch { cond, then_bb, else_bb } => {
            h.write(&[1]);
            hash_str(h, cond);
            h.write_u64(u64::from(then_bb.0));
            h.write_u64(u64::from(else_bb.0));
        }
        Terminator::Return(op) => {
            h.write(&[2]);
            match op {
                None => h.write(&[0]),
                Some(op) => {
                    h.write(&[1]);
                    hash_operand(h, op);
                }
            }
        }
        Terminator::Unreachable => h.write(&[3]),
    }
}

/// Stable hash of a function's lowered IR: name, parameters, linkage,
/// and every block's instructions and terminator, via an explicit
/// structural walk that resolves every interned name to its text (see
/// the comment above — derived `Hash` would key on process-local intern
/// ids). Warm-run keying hashes the whole active cone, so this path
/// matters: the walk is several times faster than hashing the `Display`
/// text because it never touches the `fmt` machinery.
///
/// Public because `rid-serve` diffs per-function content hashes across a
/// `patch` to discover *which* functions an edited module actually
/// changed (whitespace or comment edits change nothing here, so they
/// invalidate nothing). Unlike the private `function_keys` this is purely
/// local:
/// no salt, no callee keys.
#[must_use]
pub fn content_hash(func: &Function) -> u128 {
    let mut h = Fnv128::new();
    hash_str(&mut h, func.name());
    h.write_u64(func.params().len() as u64);
    for p in func.params() {
        hash_str(&mut h, p);
    }
    h.write(&[u8::from(func.weak)]);
    for block in func.blocks() {
        h.write_u64(block.insts.len() as u64);
        for inst in block.insts {
            hash_inst(&mut h, inst);
        }
        hash_term(&mut h, block.term);
    }
    h.finish()
}

/// The run-configuration salt folded into every key (see the module
/// docs for what belongs here and what deliberately does not).
#[must_use]
pub(crate) fn cache_salt(options: &AnalysisOptions, predefined: &SummaryDb) -> u128 {
    let mut h = Fnv128::new();
    h.write(CACHE_SCHEMA.as_bytes());
    h.write_u64(options.limits.max_paths as u64);
    h.write_u64(u64::from(options.limits.max_block_visits));
    h.write_u64(options.limits.max_subcases as u64);
    h.write_u64(options.limits.max_entries as u64);
    h.write_u64(u64::from(options.sat.max_splits));
    h.write(&[u8::from(options.selective)]);
    // SummaryDb serializes from a BTreeMap — deterministic order.
    let apis = serde_json::to_string(predefined).expect("summary db serializes");
    h.write(apis.as_bytes());
    h.finish()
}

/// Computes the content key of every function whose component is
/// reachable (through callee edges) from a component marked in `roots`;
/// unreachable functions get `None`. `roots` is indexed by component and
/// typically marks the components containing at least one analyzed
/// function — the lazy marking keeps warm re-runs from hashing the ~90%
/// of a kernel corpus the analysis never touches.
#[must_use]
pub(crate) fn function_keys(
    functions: &[&Function],
    cond: &Condensation,
    roots: &[bool],
    salt: u128,
) -> Vec<Option<u128>> {
    let n_comps = cond.members.len();
    debug_assert_eq!(roots.len(), n_comps);

    // Mark the transitive callee closure of the roots.
    let mut needed = roots.to_vec();
    let mut worklist: Vec<usize> =
        (0..n_comps).filter(|&c| roots[c]).collect();
    while let Some(c) = worklist.pop() {
        for &cw in &cond.callee_comps[c] {
            if !needed[cw] {
                needed[cw] = true;
                worklist.push(cw);
            }
        }
    }

    // Components are in reverse topological order: callee keys are ready
    // before any caller reads them.
    let mut comp_keys: Vec<Option<u128>> = vec![None; n_comps];
    for c in 0..n_comps {
        if !needed[c] {
            continue;
        }
        let mut h = Fnv128::new();
        h.write_u128(salt);
        for &i in &cond.members[c] {
            h.write_u128(content_hash(functions[i]));
        }
        for &cw in &cond.callee_comps[c] {
            h.write_u128(comp_keys[cw].expect("callee component key computed first"));
        }
        comp_keys[c] = Some(h.finish());
    }

    (0..functions.len()).map(|i| comp_keys[cond.comp_of[i]]).collect()
}

/// One cached function result: the content key it was computed under,
/// the summary, and the IPP reports found while checking it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The function's content key (32 lowercase hex digits).
    pub key: String,
    /// The cached summary. Never partial: degraded summaries are not
    /// cached (see the module docs).
    pub summary: Summary,
    /// The IPP reports produced when this function was checked.
    pub reports: Vec<IppReport>,
}

/// A persistent map from function name to cached result. Serialize with
/// [`crate::persist::save_cache`] / [`crate::persist::load_cache`].
///
/// The cache is **hybrid**: `entries` holds the resident records
/// (inserted this process, or parsed from a legacy JSON cache), while an
/// optional backing [`crate::store::SummaryStore`] answers probes for
/// everything else with an index lookup plus one positioned read — a
/// warm run materializes only the entries it actually hits. Resident
/// entries shadow backing ones.
#[derive(Clone, Debug)]
pub struct SummaryCache {
    /// Schema tag; always [`CACHE_SCHEMA`] for caches this build writes.
    pub schema: String,
    /// Resident results by function name.
    pub entries: BTreeMap<String, CacheEntry>,
    /// Lazily probed on-disk (or in-snapshot) store; resident entries
    /// shadow it. `Arc` so clones share the open file handle.
    backing: Option<std::sync::Arc<crate::store::SummaryStore>>,
}

// Serialized as the legacy `{"schema", "entries"}` JSON shape with the
// backing store *materialized* — the textual form is self-contained, so
// a cache round-tripped through JSON never silently drops lazily-held
// entries. (The store write path never comes through here; it copies
// unshadowed backing payloads as raw bytes.)
impl Serialize for SummaryCache {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::new();
        if let Some(store) = &self.backing {
            for name in store.names() {
                if self.entries.contains_key(name) {
                    continue; // shadowed; emitted from the resident map below
                }
                let entry = store
                    .read_entry(name)
                    .map_err(|e| serde::ser::Error::custom(e.to_string()))?
                    .expect("listed names are present");
                entries.push((name.to_owned(), entry));
            }
        }
        for (name, entry) in &self.entries {
            entries.push((name.clone(), entry.clone()));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut pairs = Vec::with_capacity(entries.len());
        for (name, entry) in entries {
            pairs.push((name, serde::__private::to_value_err::<_, S::Error>(&entry)?));
        }
        serializer.serialize_value(serde::Value::Map(vec![
            ("schema".to_owned(), serde::Value::Str(self.schema.clone())),
            ("entries".to_owned(), serde::Value::Map(pairs)),
        ]))
    }
}

impl<'de> Deserialize<'de> for SummaryCache {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = serde::Value::deserialize(deserializer)?;
        let fields = serde::__private::expect_map::<D::Error>(value)?;
        let mut schema = String::new();
        let mut entries = BTreeMap::new();
        for (field, value) in fields {
            match field.as_str() {
                "schema" => {
                    schema = serde::__private::from_value_err::<String, D::Error>(value)?;
                }
                "entries" => {
                    for (name, entry) in serde::__private::expect_map::<D::Error>(value)? {
                        let entry =
                            serde::__private::from_value_err::<CacheEntry, D::Error>(entry)?;
                        entries.insert(name, entry);
                    }
                }
                _ => {}
            }
        }
        Ok(SummaryCache { schema, entries, backing: None })
    }
}

impl Default for SummaryCache {
    fn default() -> Self {
        SummaryCache::new()
    }
}

/// The result of probing the cache for one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheProbe {
    /// Entry present with a matching key: reusable.
    Hit,
    /// Entry present but its key is stale (the function's cone changed).
    Stale,
    /// No entry for this function.
    Absent,
}

impl SummaryCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> SummaryCache {
        SummaryCache { schema: CACHE_SCHEMA.to_owned(), entries: BTreeMap::new(), backing: None }
    }

    /// Wraps an opened [`crate::store::SummaryStore`] as a cache with no
    /// resident entries: probes are answered from the store's index and
    /// payloads are parsed only when hit.
    #[must_use]
    pub fn from_store(store: crate::store::SummaryStore) -> SummaryCache {
        SummaryCache {
            schema: store.schema().to_owned(),
            entries: BTreeMap::new(),
            backing: Some(std::sync::Arc::new(store)),
        }
    }

    /// The backing store, if this cache was opened from one. Pass-through
    /// writers ([`crate::persist::save_cache`], the daemon's snapshot
    /// encoder) hand this to [`crate::store::write_store_bytes`] so
    /// entries the run never materialized are copied as raw bytes.
    #[must_use]
    pub fn backing_store(&self) -> Option<&crate::store::SummaryStore> {
        self.backing.as_deref()
    }

    /// Number of cached entries (resident plus unshadowed backing).
    #[must_use]
    pub fn len(&self) -> usize {
        let backed = self
            .backing
            .as_deref()
            .map(|store| store.names().filter(|n| !self.entries.contains_key(*n)).count())
            .unwrap_or(0);
        self.entries.len() + backed
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Classifies a lookup of `name` under the current `key`, returning
    /// the entry alongside a hit so the caller needs no second lookup
    /// (the warm-run fast path runs this once per analyzed function).
    /// Backing-store hits cost one positioned read plus a parse; an
    /// unreadable or corrupt stored entry counts as [`CacheProbe::Stale`]
    /// (the function is recomputed, the run is never poisoned).
    #[must_use]
    pub(crate) fn probe(&self, name: &str, key: u128) -> (CacheProbe, Option<CacheEntry>) {
        match self.entries.get(name) {
            Some(entry) if hex_matches(&entry.key, key) => {
                return (CacheProbe::Hit, Some(entry.clone()))
            }
            Some(_) => return (CacheProbe::Stale, None),
            None => {}
        }
        let Some(store) = self.backing.as_deref() else { return (CacheProbe::Absent, None) };
        match store.key_of(name) {
            None => (CacheProbe::Absent, None),
            Some(stored) if stored == key => match store.read_entry(name) {
                Ok(Some(entry)) => (CacheProbe::Hit, Some(entry)),
                _ => (CacheProbe::Stale, None),
            },
            Some(_) => (CacheProbe::Stale, None),
        }
    }

    /// The entry for `name`, regardless of key freshness. Backing-store
    /// entries are parsed on demand; unreadable ones read as absent.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<CacheEntry> {
        if let Some(entry) = self.entries.get(name) {
            return Some(entry.clone());
        }
        self.backing.as_deref().and_then(|s| s.read_entry(name).ok().flatten())
    }

    /// Inserts (or replaces) the entry for `name`.
    pub(crate) fn insert(
        &mut self,
        name: &str,
        key: u128,
        summary: Summary,
        reports: Vec<IppReport>,
    ) {
        debug_assert!(!summary.partial, "degraded summaries are never cached");
        self.entries
            .insert(name.to_owned(), CacheEntry { key: hex_key(key), summary, reports });
    }
}

/// Canonical textual form of a key (32 lowercase hex digits).
#[must_use]
pub(crate) fn hex_key(key: u128) -> String {
    format!("{key:032x}")
}

/// Parses the canonical hex form back to a key; `None` on anything that
/// is not exactly 32 lowercase hex digits.
#[must_use]
pub(crate) fn parse_hex_key(text: &str) -> Option<u128> {
    if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u128::from_str_radix(text, 16).ok()
}

/// Whether `text` is the canonical hex form of `key`, without
/// allocating the comparison string.
fn hex_matches(text: &str, key: u128) -> bool {
    let bytes = text.as_bytes();
    bytes.len() == 32
        && bytes.iter().rev().enumerate().all(|(i, &c)| {
            let digit = ((key >> (4 * i)) & 0xf) as usize;
            c == b"0123456789abcdef"[digit]
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use rid_frontend::parse_program;

    fn keys_of(srcs: &[&str]) -> (CallGraph, Vec<Option<u128>>, Vec<String>) {
        let program = parse_program(srcs.iter().copied()).unwrap();
        let graph = CallGraph::build(&program);
        let cond = graph.condensation();
        let roots = vec![true; cond.members.len()];
        let functions = program.functions();
        let keys = function_keys(&functions, &cond, &roots, 7);
        let names = functions.iter().map(|f| f.name().to_owned()).collect();
        (graph, keys, names)
    }

    fn key_map(srcs: &[&str]) -> BTreeMap<String, u128> {
        let (_, keys, names) = keys_of(srcs);
        names.into_iter().zip(keys.into_iter().map(Option::unwrap)).collect()
    }

    #[test]
    fn fnv128_distinguishes_and_is_stable() {
        let mut a = Fnv128::new();
        a.write(b"hello");
        let mut b = Fnv128::new();
        b.write(b"hello");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv128::new();
        c.write(b"hellp");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn edit_invalidates_exactly_the_caller_cone() {
        let before = [
            "module m; fn leaf(d) { pm_runtime_get(d); return; }",
            "module n; fn mid(d) { leaf(d); return; } fn top(d) { mid(d); return; } fn other(d) { pm_runtime_put(d); return; }",
        ];
        let after = [
            "module m; fn leaf(d) { pm_runtime_get(d); pm_runtime_put(d); return; }",
            "module n; fn mid(d) { leaf(d); return; } fn top(d) { mid(d); return; } fn other(d) { pm_runtime_put(d); return; }",
        ];
        let a = key_map(&before);
        let b = key_map(&after);
        assert_ne!(a["leaf"], b["leaf"]);
        assert_ne!(a["mid"], b["mid"], "callers must see the callee change");
        assert_ne!(a["top"], b["top"], "the cone is transitive");
        assert_eq!(a["other"], b["other"], "unrelated functions keep their keys");
    }

    #[test]
    fn scc_members_share_one_key_and_invalidate_together() {
        let v1 = ["module m; fn a(d) { b(d); return; } fn b(d) { a(d); return; } fn c(d) { a(d); return; }"];
        let v2 = ["module m; fn a(d) { b(d); pm_runtime_get(d); return; } fn b(d) { a(d); return; } fn c(d) { a(d); return; }"];
        let x = key_map(&v1);
        let y = key_map(&v2);
        assert_eq!(x["a"], x["b"], "SCC members share the component key");
        assert_ne!(x["a"], y["a"]);
        assert_ne!(x["b"], y["b"], "editing one member invalidates the SCC");
        assert_ne!(x["c"], y["c"], "and the SCC's callers");
    }

    #[test]
    fn lazy_marking_skips_unreachable_components() {
        let program = parse_program([
            "module m; fn wanted(d) { helper(d); return; } fn helper(d) { return; } fn ignored(d) { return; }",
        ])
        .unwrap();
        let graph = CallGraph::build(&program);
        let cond = graph.condensation();
        let functions = program.functions();
        let mut roots = vec![false; cond.members.len()];
        roots[cond.comp_of[graph.index_of("wanted").unwrap()]] = true;
        let keys = function_keys(&functions, &cond, &roots, 0);
        assert!(keys[graph.index_of("wanted").unwrap()].is_some());
        assert!(
            keys[graph.index_of("helper").unwrap()].is_some(),
            "transitive callees of a root are hashed"
        );
        assert!(
            keys[graph.index_of("ignored").unwrap()].is_none(),
            "components no root reaches are skipped"
        );
    }

    #[test]
    fn salt_changes_with_options_and_apis() {
        let apis = crate::apis::linux_dpm_apis();
        let base = AnalysisOptions::default();
        let s0 = cache_salt(&base, &apis);
        assert_eq!(s0, cache_salt(&base, &apis), "salt is deterministic");
        let mut tighter = base;
        tighter.limits.max_paths /= 2;
        assert_ne!(s0, cache_salt(&tighter, &apis));
        let mut unselective = base;
        unselective.selective = false;
        assert_ne!(s0, cache_salt(&unselective, &apis));
        assert_ne!(s0, cache_salt(&base, &crate::apis::python_c_apis()));
        let mut threaded = base;
        threaded.threads = 8;
        assert_eq!(s0, cache_salt(&threaded, &apis), "thread count is not key material");
    }

    #[test]
    fn probe_classifies_hit_stale_absent() {
        let mut cache = SummaryCache::new();
        assert!(cache.is_empty());
        cache.insert("f", 42, Summary::new("f"), Vec::new());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.probe("f", 42).0, CacheProbe::Hit);
        assert!(cache.probe("f", 42).1.is_some(), "hits carry the entry");
        assert_eq!(cache.probe("f", 43).0, CacheProbe::Stale);
        assert_eq!(cache.probe("g", 42).0, CacheProbe::Absent);
        assert_eq!(cache.get("f").unwrap().key, hex_key(42));
    }
}
