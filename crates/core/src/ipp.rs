//! Inconsistent path pair checking (step III of Figure 4; §4.5).
//!
//! Two path summaries `Si`, `Sj` form an *inconsistent path pair* when
//! `Si.cons ∧ Sj.cons` is satisfiable (the paths can be entered with the
//! same arguments and return the same value — they are indistinguishable
//! from outside) yet they change some refcount differently. Each differing
//! refcount is reported as a bug; one of the two paths is then discarded
//! so the inconsistency is not re-reported at every call site (§4.5).

use rid_ir::BlockId;
use rid_solver::{Conj, SatOptions, Term};
use serde::{Deserialize, Serialize};

use crate::exec::PathEntry;
use crate::summary::{Summary, SummaryEntry};

/// A refcount bug found by IPP checking.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IppReport {
    /// Function containing the inconsistent pair.
    pub function: String,
    /// The refcount with inconsistent changes.
    pub refcount: Term,
    /// Change along the kept path.
    pub change_a: i64,
    /// Change along the discarded path.
    pub change_b: i64,
    /// Structural path index of the kept path.
    pub path_a: usize,
    /// Structural path index of the discarded path.
    pub path_b: usize,
    /// Block trace of the kept path. `default` keeps pre-trace persisted
    /// state files loadable; the cache schema tag guards cache files.
    #[serde(default)]
    pub trace_a: Vec<BlockId>,
    /// Block trace of the discarded path.
    #[serde(default)]
    pub trace_b: Vec<BlockId>,
    /// The satisfiable joint constraint witnessing indistinguishability.
    pub witness: Conj,
    /// Whether this report came from the callback-contract extension
    /// (return-value-blind checking of registered callbacks; see
    /// [`crate::callbacks`]).
    #[serde(default)]
    pub callback: bool,
    /// A concrete assignment (argument fields, return value) under which
    /// both paths are feasible — an example the developer can replay.
    #[serde(default)]
    pub witness_model: Vec<(Term, i64)>,
    /// Explainability record: how the checker arrived at this report.
    /// Absent on reports loaded from pre-provenance state files.
    #[serde(default)]
    pub provenance: Option<ReportProvenance>,
}

/// Everything needed to *explain* an [`IppReport`]: the per-side path
/// constraints the checker conjoined, the solver's verdict on the joint
/// formula, and the callee summaries the executor consulted while
/// producing the two paths (filled by the driver, which owns the call
/// graph). Rendered by `rid explain`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportProvenance {
    /// Path constraint of the kept path (side A), as executed.
    pub cons_a: Conj,
    /// Path constraint of the discarded path (side B).
    pub cons_b: Conj,
    /// Solver verdict on `cons_a ∧ cons_b` — always `true` for emitted
    /// reports (unsat pairs are distinguishable and never reported), but
    /// recorded explicitly so the explanation states the evidence.
    pub joint_sat: bool,
    /// Names of callees whose summaries were applied while executing the
    /// function (including unresolved externals). Filled by the driver.
    #[serde(default)]
    pub callees: Vec<String>,
    /// Second-stage refutation verdict (see [`crate::refute`]). `None`
    /// until the refutation pass has judged the report (or when the pass
    /// was disabled with `--no-refute`).
    #[serde(default)]
    pub refutation: Option<crate::refute::RefuteVerdict>,
}

/// Result of checking one function's path summaries.
#[derive(Clone, Debug, Default)]
pub struct IppOutcome {
    /// Bug reports, in deterministic order.
    pub reports: Vec<IppReport>,
    /// Indices (into the input slice) of the path entries kept for the
    /// function summary.
    pub kept: Vec<usize>,
}

/// Checks all pairs of path entries for inconsistency.
///
/// Pairs are visited in index order; when a pair is inconsistent the
/// higher-indexed entry is discarded (the paper drops one of the two at
/// random — a deterministic choice makes runs reproducible, and §5.4 notes
/// either choice can be wrong).
#[must_use]
pub fn check_ipps(function: &str, entries: &[PathEntry], sat: SatOptions) -> IppOutcome {
    let _span = rid_obs::span(rid_obs::SpanKind::IppCheck, function);
    let mut outcome = IppOutcome::default();
    let mut alive: Vec<bool> = vec![true; entries.len()];

    for i in 0..entries.len() {
        if !alive[i] {
            continue;
        }
        for j in (i + 1)..entries.len() {
            if !alive[j] {
                continue;
            }
            let (a, b) = (&entries[i], &entries[j]);
            let diffs = differing_refcounts(&a.entry, &b.entry);
            if diffs.is_empty() {
                continue;
            }
            let mut joint = a.entry.cons.and(&b.entry.cons);
            if !joint.is_sat_with(sat) {
                continue; // distinguishable from outside — consistent
            }
            joint.normalize();
            let witness_model = joint.find_model(sat).unwrap_or_default();
            for rc in diffs {
                outcome.reports.push(IppReport {
                    function: function.to_owned(),
                    change_a: a.entry.change(&rc),
                    change_b: b.entry.change(&rc),
                    refcount: rc,
                    path_a: a.path_index,
                    path_b: b.path_index,
                    trace_a: a.trace.clone(),
                    trace_b: b.trace.clone(),
                    witness: joint.clone(),
                    callback: false,
                    witness_model: witness_model.clone(),
                    provenance: Some(ReportProvenance {
                        cons_a: a.entry.cons.clone(),
                        cons_b: b.entry.cons.clone(),
                        joint_sat: true,
                        callees: Vec::new(),
                        refutation: None,
                    }),
                });
            }
            alive[j] = false;
        }
    }
    outcome.kept = (0..entries.len()).filter(|&i| alive[i]).collect();
    outcome
}

/// The refcounts whose changes differ between two entries.
fn differing_refcounts(a: &SummaryEntry, b: &SummaryEntry) -> Vec<Term> {
    let mut keys: Vec<&Term> = a.changes.keys().chain(b.changes.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter().filter(|rc| a.change(rc) != b.change(rc)).cloned().collect()
}

/// Builds the function summary from the kept entries (§4.5: "the set of
/// path summaries excluding the ones discarded during IPP checking"),
/// appending the default entry when analysis was partial.
#[must_use]
pub fn build_summary(
    function: &str,
    entries: &[PathEntry],
    outcome: &IppOutcome,
    partial: bool,
) -> Summary {
    let mut summary = Summary::new(function);
    summary.partial = partial;
    for &i in &outcome.kept {
        summary.entries.push(entries[i].entry.clone());
    }
    if partial {
        summary.entries.push(SummaryEntry::default_entry());
    }
    summary.dedup_entries();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_ir::Pred;
    use rid_solver::{Lit, Var};
    use std::collections::BTreeMap;

    fn pe(cons: Conj, changes: &[(Term, i64)], path_index: usize) -> PathEntry {
        let mut map = BTreeMap::new();
        for (rc, delta) in changes {
            map.insert(rc.clone(), *delta);
        }
        PathEntry {
            entry: SummaryEntry { cons, changes: map, ret: None },
            path_index,
            trace: vec![BlockId(0)],
        }
    }

    fn pm() -> Term {
        Term::var(Var::formal(0)).field("pm")
    }

    fn ret_is(v: i64) -> Conj {
        Conj::from_lits([Lit::new(Pred::Eq, Term::var(Var::ret()), Term::int(v))])
    }

    #[test]
    fn indistinguishable_different_changes_is_reported() {
        let entries =
            vec![pe(ret_is(0), &[(pm(), 1)], 0), pe(ret_is(0), &[], 1)];
        let out = check_ipps("foo", &entries, SatOptions::default());
        assert_eq!(out.reports.len(), 1);
        let r = &out.reports[0];
        assert_eq!(r.refcount, pm());
        assert_eq!((r.change_a, r.change_b), (1, 0));
        assert_eq!(out.kept, vec![0]);
        assert!(r.witness.is_sat());
    }

    #[test]
    fn distinguishable_paths_are_consistent() {
        let entries =
            vec![pe(ret_is(-1), &[(pm(), 1)], 0), pe(ret_is(0), &[], 1)];
        let out = check_ipps("foo", &entries, SatOptions::default());
        assert!(out.reports.is_empty());
        assert_eq!(out.kept, vec![0, 1]);
    }

    #[test]
    fn equal_changes_are_consistent() {
        let entries =
            vec![pe(ret_is(0), &[(pm(), 1)], 0), pe(ret_is(0), &[(pm(), 1)], 1)];
        let out = check_ipps("foo", &entries, SatOptions::default());
        assert!(out.reports.is_empty());
    }

    #[test]
    fn one_report_per_differing_refcount() {
        let usage = Term::var(Var::formal(0)).field("usage");
        let entries = vec![
            pe(ret_is(0), &[(pm(), 1), (usage.clone(), 1)], 0),
            pe(ret_is(0), &[], 1),
        ];
        let out = check_ipps("foo", &entries, SatOptions::default());
        assert_eq!(out.reports.len(), 2);
        let rcs: Vec<&Term> = out.reports.iter().map(|r| &r.refcount).collect();
        assert!(rcs.contains(&&pm()) && rcs.contains(&&usage));
    }

    #[test]
    fn discarded_entry_not_rechecked() {
        // Three equal-constraint entries with changes 1, 0, 0: entry 1 is
        // discarded after the first pair; entries 0 and 2 then still form
        // a pair. Total two pairs, entry 2 also dropped.
        let entries = vec![
            pe(ret_is(0), &[(pm(), 1)], 0),
            pe(ret_is(0), &[], 1),
            pe(ret_is(0), &[], 2),
        ];
        let out = check_ipps("foo", &entries, SatOptions::default());
        assert_eq!(out.reports.len(), 2);
        assert_eq!(out.kept, vec![0]);
    }

    #[test]
    fn summary_built_from_kept_entries() {
        let entries =
            vec![pe(ret_is(0), &[(pm(), 1)], 0), pe(ret_is(0), &[], 1)];
        let out = check_ipps("foo", &entries, SatOptions::default());
        let summary = build_summary("foo", &entries, &out, false);
        assert_eq!(summary.entries.len(), 1);
        assert!(summary.entries[0].has_changes());
        assert!(!summary.partial);

        let partial = build_summary("foo", &entries, &out, true);
        assert!(partial.partial);
        assert_eq!(partial.entries.len(), 2); // kept + default
    }

    #[test]
    fn overlapping_but_compatible_constraints_pair_up() {
        // cons_a: ret ≥ 0, cons_b: ret ≤ 0 — they overlap at ret = 0.
        let a = Conj::from_lits([Lit::new(Pred::Ge, Term::var(Var::ret()), Term::int(0))]);
        let b = Conj::from_lits([Lit::new(Pred::Le, Term::var(Var::ret()), Term::int(0))]);
        let entries = vec![pe(a, &[(pm(), 1)], 0), pe(b, &[], 1)];
        let out = check_ipps("foo", &entries, SatOptions::default());
        assert_eq!(out.reports.len(), 1);
    }
}
