//! Second-stage refutation of IPP reports.
//!
//! Stage one ([`crate::ipp`]) is deliberately over-approximate: the
//! executor's feasibility checks and the joint-constraint check both run
//! under a bounded disequality split budget ([`rid_solver::SatOptions`])
//! and under per-function solver fuel, and every exhaustion degrades
//! toward "satisfiable" (§5.4 of the paper) — so a pair whose joint
//! constraint is *actually* unsatisfiable can still be reported when
//! proving that needed more case splits than the budget allowed.
//!
//! This module is the second stage: after the whole-program pass has
//! produced its reports (and the summary database is complete), each
//! surviving report's joint constraint is re-validated with disequality
//! splitting fully enabled (`max_splits = u32::MAX`) and with the
//! independently satisfiable constraints of single-entry callee
//! summaries conjoined cross-function through the existing
//! [`IncrementalSolver`] (see [`refute_report`] for why the
//! independent-satisfiability guard is what keeps the conjunction
//! sound). Three verdicts come out:
//!
//! * [`Refuted`](RefuteVerdict::Refuted) — the strengthened conjunction
//!   is unsatisfiable: the two paths can never be entered
//!   indistinguishably, the report is spurious and is **dropped**;
//! * [`Confirmed`](RefuteVerdict::Confirmed) — still satisfiable under
//!   the exact check: the report survives with positive evidence;
//! * [`Inconclusive`](RefuteVerdict::Inconclusive) — the refutation ran
//!   out of fuel (or the report carries no provenance to re-check). The
//!   report is **kept**: running out of budget is never treated as a
//!   refutation, preserving the paper's false-positives-only degradation
//!   direction end to end.
//!
//! The pass runs once per analysis, *after* cache write-back staging
//! (cached reports are stage-one reports, so warm runs re-refute
//! deterministically and stay byte-identical to cold runs), after the
//! shard merge in multi-process mode (workers skip it, exactly like the
//! callback pass), and at the end of incremental re-analysis. See
//! `DESIGN.md` §17.

use serde::{Deserialize, Serialize};

use rid_solver::{fuel, IncrementalSolver, SatOptions, Term, Var};

use crate::driver::AnalysisStats;
use crate::ipp::IppReport;
use crate::summary::SummaryDb;

/// Outcome of re-validating one report's joint constraints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefuteVerdict {
    /// The strengthened joint conjunction is satisfiable under exact
    /// disequality splitting: the inconsistency is real as far as the
    /// constraint abstraction can tell. The report is kept.
    Confirmed,
    /// The strengthened joint conjunction is unsatisfiable: the two paths
    /// are distinguishable after all and the report is dropped.
    Refuted,
    /// The refutation budget ran out (or the report has no provenance to
    /// re-check). Kept — exhaustion never refutes.
    Inconclusive,
}

impl RefuteVerdict {
    /// Stable lowercase label (matches the serde encoding).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RefuteVerdict::Confirmed => "confirmed",
            RefuteVerdict::Refuted => "refuted",
            RefuteVerdict::Inconclusive => "inconclusive",
        }
    }
}

impl Serialize for RefuteVerdict {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // The lowercase labels are the REPORTS.md contract; the derive
        // would emit the Rust variant names instead.
        serializer.serialize_value(serde::Value::Str(self.label().to_owned()))
    }
}

impl<'de> Deserialize<'de> for RefuteVerdict {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            serde::Value::Str(s) => match s.as_str() {
                "confirmed" => Ok(RefuteVerdict::Confirmed),
                "refuted" => Ok(RefuteVerdict::Refuted),
                "inconclusive" => Ok(RefuteVerdict::Inconclusive),
                other => Err(serde::de::Error::custom(format_args!(
                    "unknown refutation verdict {other:?}"
                ))),
            },
            other => Err(serde::de::Error::custom(format_args!(
                "expected refutation verdict string, found {other}"
            ))),
        }
    }
}

/// Solver fuel installed around one report's refutation when the run has
/// no [`crate::budget::Budget::solver_fuel`] configured. Bounded so an
/// adversarial disequality structure cannot hang the pass: splitting is
/// fully enabled, but each split costs a unit of fuel, and exhaustion
/// yields [`RefuteVerdict::Inconclusive`], never a refutation.
pub const DEFAULT_REFUTE_FUEL: u64 = 1 << 22;

/// Base for the synthetic call-site ids used when instantiating callee
/// summary constraints. Chosen far above any instruction-derived site id
/// the executor can produce, so the fresh opaque variables never collide
/// with variables already present in the pair's path constraints.
const REFUTE_SITE_BASE: u32 = 0x4000_0000;

/// Variable slot for the synthetic return value of an instantiated
/// callee summary. `Opaque` subscripts from real summaries are
/// `id * 64 + sub` or `1000 + id` (see [`crate::summary`]); this sits
/// far outside both ranges.
const REFUTE_RET_SUB: u32 = 0x00ff_ffff;

/// Re-validates one report: pushes both sides' path constraints and the
/// usable callee summary constraints into an [`IncrementalSolver`] and
/// asks for satisfiability with splitting fully enabled, under a fuel
/// budget (`fuel_budget`, defaulting to [`DEFAULT_REFUTE_FUEL`]).
///
/// Only callee constraints that cannot flip the verdict unsoundly are
/// conjoined. A summary contributes iff it is complete (not partial),
/// has exactly one entry (multi-entry summaries are disjunctive), and
/// its instantiated constraint is *independently satisfiable*. The last
/// condition is load-bearing: `provenance.callees` is the caller's
/// whole call-graph callee set, not the calls made on the report's two
/// paths, and the instantiation below is over fresh variables disjoint
/// from `cons_a`/`cons_b` — so a satisfiable conjunct can never change
/// the joint verdict, while an independently *unsatisfiable* one (a
/// complete summary minted when stage one's split budget expired before
/// detecting the contradiction) would refute every report of every
/// caller, even reports whose paths never reach that callee. Those
/// conjuncts are detected and skipped — this pass must never refute a
/// true positive.
#[must_use]
pub fn refute_report(
    report: &IppReport,
    db: &SummaryDb,
    fuel_budget: Option<u64>,
) -> RefuteVerdict {
    let Some(p) = &report.provenance else {
        return RefuteVerdict::Inconclusive;
    };
    let mut span = rid_obs::span(rid_obs::SpanKind::Refute, &report.function);
    let _fuel = fuel::install(fuel_budget.unwrap_or(DEFAULT_REFUTE_FUEL));
    let mut solver = IncrementalSolver::new();
    solver.push_conj(&p.cons_a);
    solver.push_conj(&p.cons_b);
    for (site, callee) in p.callees.iter().enumerate() {
        let Some(summary) = db.get(callee) else { continue };
        if summary.partial || summary.entries.len() != 1 {
            continue;
        }
        let site_id = REFUTE_SITE_BASE + site as u32;
        let ret = Term::var(Var::opaque(site_id, REFUTE_RET_SUB));
        let inst = summary.entries[0].instantiate(&[], &ret, site_id);
        // The conjunct is over fresh variables: satisfiable means it is a
        // no-op for the joint verdict, independently unsatisfiable means
        // it would refute this report regardless of the report's own
        // paths — exactly the unsound case, so it is skipped. An
        // exhaustion here degrades toward "satisfiable" and the final
        // fuel check below still turns the verdict inconclusive.
        if !inst.cons.is_sat_with(SatOptions { max_splits: u32::MAX }) {
            continue;
        }
        solver.push_conj(&inst.cons);
    }
    let sat = solver.is_sat(SatOptions { max_splits: u32::MAX });
    let verdict = if fuel::exhausted() {
        RefuteVerdict::Inconclusive
    } else if sat {
        RefuteVerdict::Confirmed
    } else {
        RefuteVerdict::Refuted
    };
    span.set_value(match verdict {
        RefuteVerdict::Refuted => 0,
        RefuteVerdict::Confirmed => 1,
        RefuteVerdict::Inconclusive => 2,
    });
    verdict
}

/// The refutation pass: judges every report, records the verdict in its
/// provenance (so `rid explain` can say why it survived), drops the
/// refuted ones, and tallies the split into `stats`.
///
/// Re-judging is deterministic, so reports that already carry a verdict
/// (carried over by incremental re-analysis) converge to the same one.
pub(crate) fn refute_pass(
    db: &SummaryDb,
    fuel_budget: Option<u64>,
    reports: &mut Vec<IppReport>,
    stats: &mut AnalysisStats,
) {
    reports.retain_mut(|report| {
        let verdict = refute_report(report, db, fuel_budget);
        match verdict {
            RefuteVerdict::Confirmed => stats.reports_confirmed += 1,
            RefuteVerdict::Refuted => stats.reports_refuted += 1,
            RefuteVerdict::Inconclusive => stats.reports_inconclusive += 1,
        }
        if let Some(p) = report.provenance.as_mut() {
            p.refutation = Some(verdict);
        }
        verdict != RefuteVerdict::Refuted
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipp::ReportProvenance;
    use rid_ir::Pred;
    use rid_solver::{Conj, Lit};

    fn report_with(cons_a: Conj, cons_b: Conj, callees: Vec<String>) -> IppReport {
        IppReport {
            function: "f".to_owned(),
            refcount: Term::var(Var::formal(0)).field("pm"),
            change_a: 1,
            change_b: 0,
            path_a: 0,
            path_b: 1,
            trace_a: Vec::new(),
            trace_b: Vec::new(),
            witness: cons_a.and(&cons_b),
            callback: false,
            witness_model: Vec::new(),
            provenance: Some(ReportProvenance {
                cons_a,
                cons_b,
                joint_sat: true,
                callees,
                refutation: None,
            }),
        }
    }

    fn arg() -> Term {
        Term::var(Var::formal(1))
    }

    /// `0 ≤ a ≤ n` plus `a ≠ 0 … a ≠ n`: unsatisfiable, but proving it
    /// takes `n` case splits — above the stage-one default budget of 64
    /// when `n > 64`.
    fn pigeonhole(n: i64) -> Conj {
        let mut lits = vec![
            Lit::new(Pred::Ge, arg(), Term::int(0)),
            Lit::new(Pred::Le, arg(), Term::int(n)),
        ];
        for k in 0..=n {
            lits.push(Lit::new(Pred::Ne, arg(), Term::int(k)));
        }
        Conj::from_lits(lits)
    }

    #[test]
    fn sat_joint_is_confirmed() {
        let a = Conj::from_lits([Lit::new(Pred::Ge, arg(), Term::int(0))]);
        let b = Conj::from_lits([Lit::new(Pred::Le, arg(), Term::int(10))]);
        let report = report_with(a, b, Vec::new());
        assert_eq!(refute_report(&report, &SummaryDb::new(), None), RefuteVerdict::Confirmed);
    }

    #[test]
    fn deep_split_unsat_joint_is_refuted() {
        // Stage one keeps this pair (needs 71 splits > the 64 budget);
        // stage two, with splitting fully enabled, kills it.
        let joint = pigeonhole(71);
        assert!(joint.is_sat_with(SatOptions::default()), "stage one must be fooled");
        let report = report_with(joint, Conj::truth(), Vec::new());
        assert_eq!(refute_report(&report, &SummaryDb::new(), None), RefuteVerdict::Refuted);
    }

    #[test]
    fn out_of_fuel_is_inconclusive_never_refuting() {
        let report = report_with(pigeonhole(71), Conj::truth(), Vec::new());
        // One unit of fuel cannot even close the matrix, let alone split.
        assert_eq!(
            refute_report(&report, &SummaryDb::new(), Some(1)),
            RefuteVerdict::Inconclusive
        );
    }

    #[test]
    fn missing_provenance_is_inconclusive() {
        let mut report = report_with(Conj::truth(), Conj::truth(), Vec::new());
        report.provenance = None;
        assert_eq!(
            refute_report(&report, &SummaryDb::new(), None),
            RefuteVerdict::Inconclusive
        );
    }

    #[test]
    fn pass_drops_refuted_and_records_verdicts() {
        let confirmed = report_with(Conj::truth(), Conj::truth(), Vec::new());
        let refuted = report_with(pigeonhole(71), Conj::truth(), Vec::new());
        let mut reports = vec![confirmed, refuted];
        let mut stats = AnalysisStats::default();
        refute_pass(&SummaryDb::new(), None, &mut reports, &mut stats);
        assert_eq!(reports.len(), 1);
        assert_eq!(
            reports[0].provenance.as_ref().unwrap().refutation,
            Some(RefuteVerdict::Confirmed)
        );
        assert_eq!((stats.reports_confirmed, stats.reports_refuted), (1, 1));
        assert_eq!(stats.reports_inconclusive, 0);
    }

    #[test]
    fn multi_entry_callee_summaries_are_never_conjoined() {
        // A two-entry callee summary is disjunctive; conjoining one entry
        // (here: an unsatisfiable one) would wrongly refute the report.
        let mut db = SummaryDb::new();
        let mut s = crate::summary::Summary::new("callee");
        s.entries.push(crate::summary::SummaryEntry {
            cons: Conj::unsat(),
            changes: Default::default(),
            ret: None,
        });
        s.entries.push(crate::summary::SummaryEntry::default_entry());
        db.insert(s);
        let report = report_with(Conj::truth(), Conj::truth(), vec!["callee".to_owned()]);
        assert_eq!(refute_report(&report, &db, None), RefuteVerdict::Confirmed);
    }

    /// One complete single-entry summary whose constraint is unsat for
    /// the given caller-side constraints.
    fn db_with_unsat_callee(cons: Conj) -> SummaryDb {
        let mut db = SummaryDb::new();
        let mut s = crate::summary::Summary::new("callee");
        s.entries.push(crate::summary::SummaryEntry {
            cons,
            changes: Default::default(),
            ret: None,
        });
        db.insert(s);
        db
    }

    #[test]
    fn independently_unsat_callee_summary_never_refutes() {
        // `provenance.callees` is the caller's whole call-graph callee
        // set and the instantiation is over fresh variables, so an
        // independently unsatisfiable complete summary would refute
        // every caller report — including ones whose paths never reach
        // the callee. It must be skipped, not conjoined.
        let db = db_with_unsat_callee(Conj::unsat());
        let report = report_with(
            Conj::from_lits([Lit::new(Pred::Ge, arg(), Term::int(0))]),
            Conj::truth(),
            vec!["callee".to_owned()],
        );
        assert_eq!(refute_report(&report, &db, None), RefuteVerdict::Confirmed);
    }

    #[test]
    fn deep_split_unsat_callee_summary_never_refutes() {
        // The seeded-spurious idiom as a *summary*: stage one's split
        // budget expired before detecting the contradiction, so the
        // callee's complete single-entry summary carries a constraint
        // that is unsat only beyond 64 splits. Stage two's pre-check
        // runs with splitting fully enabled and must still skip it.
        let joint = pigeonhole(71);
        assert!(joint.is_sat_with(SatOptions::default()), "stage one must be fooled");
        let db = db_with_unsat_callee(joint);
        let report = report_with(Conj::truth(), Conj::truth(), vec!["callee".to_owned()]);
        assert_eq!(refute_report(&report, &db, None), RefuteVerdict::Confirmed);
    }
}
