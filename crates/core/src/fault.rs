//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] tells the driver to sabotage the analysis of selected
//! functions: panic inside summarization, stall the solver (by draining
//! its fuel), or sleep so a deadline trips. Selection is *deterministic* —
//! a function is faulted iff a seeded hash of its name falls under the
//! configured rate, or it is listed explicitly — so the same plan faults
//! the same functions in sequential and parallel runs, which is what lets
//! the test suite assert `parallel == sequential under faults`.
//!
//! The plan exists purely to exercise the fault-tolerance machinery
//! (panic isolation, retry, degradation records); production entry points
//! use [`FaultPlan::none`], which injects nothing.

use serde::{Deserialize, Serialize};

/// A deterministic fault-injection plan.
///
/// Serializable so coordinators can ship a plan to shard worker
/// processes verbatim — selection hashes only the seed and the function
/// name, so the same plan faults the same functions in every process.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-function selection hash.
    pub seed: u64,
    /// Fraction (0.0–1.0) of functions whose first summarization attempt
    /// panics.
    pub panic_rate: f64,
    /// Fraction (0.0–1.0) of functions that sleep [`FaultPlan::slow_ms`]
    /// milliseconds before summarization (to trip deadlines).
    pub slow_rate: f64,
    /// Sleep duration for slow-faulted functions, in milliseconds.
    pub slow_ms: u64,
    /// Fraction (0.0–1.0) of functions whose solver fuel is drained on
    /// entry, simulating a stalled solver.
    pub stall_rate: f64,
    /// Functions that always panic on the first attempt, regardless of
    /// rate.
    pub panic_functions: Vec<String>,
    /// Functions that always sleep, regardless of rate.
    pub slow_functions: Vec<String>,
    /// When set, panic-faulted functions panic on the retry too, so they
    /// degrade all the way to [`crate::budget::DegradeReason::Panic`].
    pub panic_twice: bool,
}

/// FNV-1a over the seed and the function name: stable across runs,
/// platforms, and thread schedules. Public so other fault planes (e.g.
/// `rid-serve`'s `ServeFaultPlan`) select their victims with the exact
/// same deterministic recipe.
#[must_use]
pub fn selection_hash(seed: u64, name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Whether the deterministic selector picks `name` at the given `rate`
/// under `(seed, salt)`. Rates ≤ 0 select nothing; rates ≥ 1 select
/// everything; in between, the seeded hash of the name is mapped to
/// [0, 1) and compared against the rate.
#[must_use]
pub fn rate_selects(seed: u64, salt: u64, name: &str, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    // FNV's high bits avalanche poorly for short names; finalize with the
    // murmur3 mixer before taking the top bits.
    let mut h = selection_hash(seed ^ salt, name);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    // Map the hash to [0, 1) with 53-bit precision.
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    unit < rate
}

impl FaultPlan {
    /// The empty plan: injects nothing anywhere.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether this plan can inject anything at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.panic_rate <= 0.0
            && self.slow_rate <= 0.0
            && self.stall_rate <= 0.0
            && self.panic_functions.is_empty()
            && self.slow_functions.is_empty()
    }

    /// Whether summarization attempt `attempt` (0 = first) of `name`
    /// should panic.
    #[must_use]
    pub fn should_panic(&self, name: &str, attempt: u32) -> bool {
        if attempt > 0 && !self.panic_twice {
            return false;
        }
        if attempt > 1 {
            return false; // never sabotage beyond the one retry
        }
        self.panic_functions.iter().any(|f| f == name)
            || rate_selects(self.seed, 0x70616e69, name, self.panic_rate)
    }

    /// Whether `name` should sleep before summarization (first attempt
    /// only — the retry runs unslowed so `Retried` stays reachable).
    #[must_use]
    pub fn should_slow(&self, name: &str, attempt: u32) -> bool {
        if attempt > 0 {
            return false;
        }
        self.slow_functions.iter().any(|f| f == name)
            || rate_selects(self.seed, 0x736c6f77, name, self.slow_rate)
    }

    /// Whether `name`'s solver fuel should be drained on entry.
    #[must_use]
    pub fn should_stall(&self, name: &str) -> bool {
        rate_selects(self.seed, 0x7374616c, name, self.stall_rate)
    }

    /// Every function from `names` the plan would fault in any way.
    pub fn faulted<'a>(
        &'a self,
        names: impl IntoIterator<Item = &'a str> + 'a,
    ) -> impl Iterator<Item = &'a str> + 'a {
        names.into_iter().filter(move |name| {
            self.should_panic(name, 0) || self.should_slow(name, 0) || self.should_stall(name)
        })
    }

    /// Executes the injection point for `(name, attempt)`: sleeps if
    /// slow-faulted, panics if panic-faulted. Called by the driver inside
    /// its `catch_unwind` envelope.
    ///
    /// # Panics
    ///
    /// Panics exactly when [`FaultPlan::should_panic`] says so — that is
    /// the injected fault.
    pub fn inject(&self, name: &str, attempt: u32) {
        if self.should_slow(name, attempt) && self.slow_ms > 0 {
            if rid_obs::enabled() {
                rid_obs::event(
                    rid_obs::SpanKind::Fault,
                    &format!("slow:{name}"),
                    u64::from(attempt),
                );
            }
            std::thread::sleep(std::time::Duration::from_millis(self.slow_ms));
        }
        if self.should_panic(name, attempt) {
            if rid_obs::enabled() {
                rid_obs::event(
                    rid_obs::SpanKind::Fault,
                    &format!("panic:{name}"),
                    u64::from(attempt),
                );
            }
            panic!("injected fault: panic in `{name}` (attempt {attempt})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_selects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(!plan.should_panic("anything", 0));
        assert!(!plan.should_slow("anything", 0));
        assert!(!plan.should_stall("anything"));
    }

    #[test]
    fn selection_is_deterministic_and_seed_sensitive() {
        let plan = FaultPlan { seed: 7, panic_rate: 0.3, ..FaultPlan::none() };
        let names: Vec<String> = (0..200).map(|i| format!("fn_{i}")).collect();
        let picks: Vec<bool> = names.iter().map(|n| plan.should_panic(n, 0)).collect();
        let again: Vec<bool> = names.iter().map(|n| plan.should_panic(n, 0)).collect();
        assert_eq!(picks, again);
        let hit = picks.iter().filter(|&&p| p).count();
        assert!((20..=90).contains(&hit), "~30% of 200 expected, got {hit}");
        let other = FaultPlan { seed: 8, ..plan };
        let other_picks: Vec<bool> = names.iter().map(|n| other.should_panic(n, 0)).collect();
        assert_ne!(picks, other_picks);
    }

    #[test]
    fn explicit_lists_override_rates() {
        let plan = FaultPlan {
            panic_functions: vec!["boom".into()],
            slow_functions: vec!["slug".into()],
            ..FaultPlan::none()
        };
        assert!(plan.should_panic("boom", 0));
        assert!(!plan.should_panic("boom", 1), "retry is clean by default");
        assert!(plan.should_slow("slug", 0));
        let twice = FaultPlan { panic_twice: true, ..plan };
        assert!(twice.should_panic("boom", 1));
        assert!(!twice.should_panic("boom", 2), "never beyond the retry");
    }

    #[test]
    fn inject_panics_on_selected_function() {
        let plan = FaultPlan { panic_functions: vec!["boom".into()], ..FaultPlan::none() };
        plan.inject("fine", 0); // no-op
        let err = std::panic::catch_unwind(|| plan.inject("boom", 0));
        assert!(err.is_err());
    }
}
