//! Resource budgets and the degradation taxonomy.
//!
//! The paper bounds analysis cost per function with hard caps on paths,
//! subcases, and summary entries (§5.2); whenever a cap is hit the
//! function degrades to the *default summary* and the analysis moves on.
//! This module extends that discipline to wall-clock time and solver work:
//!
//! * [`Budget`] configures a per-function deadline, a solver fuel
//!   allowance ([`rid_solver::fuel`]), and a global analysis deadline;
//! * [`BudgetMeter`] is the cooperative runtime check — path enumeration
//!   and symbolic execution poll it between units of work, so no thread is
//!   ever killed;
//! * [`Degradation`] records *why* a function fell back to the default
//!   summary ([`DegradeReason`]) and what it had cost ([`FunctionCost`]),
//!   making graceful degradation observable instead of silent.
//!
//! Exhausting any budget is handled exactly like a path-cap hit today: the
//! function keeps whatever entries were finalized, gains the default
//! entry, and is reported as degraded.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Resource budgets for one analysis run. The default is unlimited in
/// every dimension, reproducing the paper's cap-only behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline for one function's summarization.
    pub func_deadline: Option<Duration>,
    /// Solver fuel per function (relaxation sweeps + disequality splits;
    /// see [`rid_solver::fuel`]).
    pub solver_fuel: Option<u64>,
    /// Wall-clock deadline for the whole analysis; functions starting (or
    /// polling) after it has passed degrade immediately.
    pub global_deadline: Option<Duration>,
}

impl Budget {
    /// No limits in any dimension.
    #[must_use]
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Whether every dimension is unlimited.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }
}

/// How often (in polls) the meter consults the clock; between clock reads
/// a poll is a single relaxed atomic increment.
const POLL_STRIDE: u64 = 64;

/// Cooperative per-function budget meter.
///
/// Workers call [`BudgetMeter::expired`] between units of work (per
/// enumerated path, per executed path). The check is cheap — an atomic
/// counter, with the clock consulted every `POLL_STRIDE` polls — and
/// once the deadline passes the expiry latches.
#[derive(Debug)]
pub struct BudgetMeter {
    started: Instant,
    func_deadline: Option<Duration>,
    global_deadline: Option<Instant>,
    polls: AtomicU64,
    expired: AtomicBool,
}

impl BudgetMeter {
    /// Starts a meter for one function. `global_deadline` is the absolute
    /// end of the whole analysis, computed once by the driver.
    #[must_use]
    pub fn start(budget: &Budget, global_deadline: Option<Instant>) -> BudgetMeter {
        BudgetMeter {
            started: Instant::now(),
            func_deadline: budget.func_deadline,
            global_deadline,
            polls: AtomicU64::new(0),
            expired: AtomicBool::new(false),
        }
    }

    /// A meter that never expires (for unbudgeted entry points).
    #[must_use]
    pub fn unlimited() -> BudgetMeter {
        BudgetMeter::start(&Budget::unlimited(), None)
    }

    /// Polls the meter; returns `true` once any deadline has passed.
    pub fn expired(&self) -> bool {
        if self.expired.load(Ordering::Relaxed) {
            return true;
        }
        if self.func_deadline.is_none() && self.global_deadline.is_none() {
            return false;
        }
        let polls = self.polls.fetch_add(1, Ordering::Relaxed);
        if !polls.is_multiple_of(POLL_STRIDE) {
            return false;
        }
        let now = Instant::now();
        let func_over =
            self.func_deadline.is_some_and(|limit| now.duration_since(self.started) > limit);
        let global_over = self.global_deadline.is_some_and(|end| now > end);
        if func_over || global_over {
            self.expired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Whether expiry has latched (without polling the clock again).
    #[must_use]
    pub fn has_expired(&self) -> bool {
        self.expired.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the meter started.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Why a function's summary was degraded to include the default entry.
///
/// Ordered roughly from "mildest" (a structural cap, the paper's §5.2
/// behaviour) to "hardest" (a worker panic).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DegradeReason {
    /// Path enumeration hit [`crate::paths::PathLimits::max_paths`].
    PathCap,
    /// Summary forking hit [`crate::paths::PathLimits::max_subcases`].
    SubcaseCap,
    /// The summary hit [`crate::paths::PathLimits::max_entries`].
    EntryCap,
    /// The solver fuel budget ([`Budget::solver_fuel`]) ran out.
    SolverFuel,
    /// A wall-clock deadline ([`Budget::func_deadline`] or
    /// [`Budget::global_deadline`]) passed.
    Deadline,
    /// Summarization panicked (twice — the retry also failed); the
    /// function has exactly the default summary.
    Panic,
    /// The first attempt panicked but a sequential retry with reduced
    /// limits produced a summary.
    Retried,
}

impl DegradeReason {
    /// Short lowercase label for report lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DegradeReason::PathCap => "path-cap",
            DegradeReason::SubcaseCap => "subcase-cap",
            DegradeReason::EntryCap => "entry-cap",
            DegradeReason::SolverFuel => "solver-fuel",
            DegradeReason::Deadline => "deadline",
            DegradeReason::Panic => "panic",
            DegradeReason::Retried => "retried",
        }
    }
}

/// Emits a `Degrade` instant trace event for one new degradation record,
/// named `<reason-label>:<function>`. Called exactly once per record the
/// driver (or incremental re-analyzer) creates, so a drained trace's
/// degrade events agree one-to-one with [`Degradation`] entries — the
/// invariant the faults/trace agreement test pins.
pub(crate) fn trace_degradation(name: &str, reason: DegradeReason) {
    if rid_obs::enabled() {
        rid_obs::event(
            rid_obs::SpanKind::Degrade,
            &format!("{}:{}", reason.label(), name),
            1,
        );
    }
}

/// What a function's (possibly abandoned) analysis cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionCost {
    /// Structural paths enumerated before stopping.
    pub paths: usize,
    /// Symbolic states explored before stopping.
    pub states: usize,
    /// Wall-clock milliseconds spent on the function (all attempts).
    pub wall_ms: u64,
}

/// One function's degradation record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Degradation {
    /// Why the function degraded.
    pub reason: DegradeReason,
    /// What its analysis cost.
    pub cost: FunctionCost,
}

/// Renders the one-line degradation summary the CLI prints, e.g.
/// `3 functions degraded: 2 deadline, 1 panic`. Empty string when nothing
/// degraded.
#[must_use]
pub fn degradation_summary_line<'a>(
    degraded: impl IntoIterator<Item = &'a Degradation>,
) -> String {
    let mut by_reason: std::collections::BTreeMap<DegradeReason, usize> =
        std::collections::BTreeMap::new();
    let mut total = 0usize;
    for d in degraded {
        *by_reason.entry(d.reason).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return String::new();
    }
    let parts: Vec<String> =
        by_reason.iter().map(|(reason, n)| format!("{n} {}", reason.label())).collect();
    format!(
        "{total} function{} degraded: {}",
        if total == 1 { "" } else { "s" },
        parts.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_expires() {
        let meter = BudgetMeter::unlimited();
        for _ in 0..10_000 {
            assert!(!meter.expired());
        }
        assert!(!meter.has_expired());
    }

    #[test]
    fn function_deadline_latches() {
        let budget = Budget { func_deadline: Some(Duration::ZERO), ..Budget::unlimited() };
        let meter = BudgetMeter::start(&budget, None);
        std::thread::sleep(Duration::from_millis(2));
        // The stride means the first few polls may pass; one must trip.
        let tripped = (0..2 * POLL_STRIDE).any(|_| meter.expired());
        assert!(tripped);
        assert!(meter.has_expired());
        assert!(meter.expired(), "expiry latches");
    }

    #[test]
    fn global_deadline_in_the_past_expires() {
        let budget = Budget { global_deadline: Some(Duration::ZERO), ..Budget::unlimited() };
        let meter = BudgetMeter::start(&budget, Some(Instant::now() - Duration::from_secs(1)));
        let tripped = (0..2 * POLL_STRIDE).any(|_| meter.expired());
        assert!(tripped);
    }

    #[test]
    fn summary_line_formats_counts() {
        let d = |reason| Degradation { reason, cost: FunctionCost::default() };
        assert_eq!(degradation_summary_line(&[]), "");
        assert_eq!(
            degradation_summary_line(&[d(DegradeReason::Deadline)]),
            "1 function degraded: 1 deadline"
        );
        let line = degradation_summary_line(&[
            d(DegradeReason::Deadline),
            d(DegradeReason::Panic),
            d(DegradeReason::Deadline),
        ]);
        assert_eq!(line, "3 functions degraded: 2 deadline, 1 panic");
    }

    #[test]
    fn budget_reports_unlimited() {
        assert!(Budget::unlimited().is_unlimited());
        let b = Budget { solver_fuel: Some(10), ..Budget::unlimited() };
        assert!(!b.is_unlimited());
    }
}
