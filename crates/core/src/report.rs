//! Bug-report rendering and heuristic classification.
//!
//! §6.2 of the paper observes two dominant bug classes: developers'
//! misunderstanding of API specifications (Figure 8) and improper error
//! handling (Figure 9). This module adds a lightweight classifier over IPP
//! reports plus human-readable rendering that restores source-level
//! parameter names.

use std::fmt::Write as _;

use rid_ir::{Function, Program};
use rid_solver::{Term, Var, VarKind};
use serde::{Deserialize, Serialize};

use crate::ipp::IppReport;

/// Renders the full explanation of one report: the classification, the
/// per-side path constraints the IPP checker conjoined, the solver's
/// verdict on the joint formula, the block traces, and the callee
/// summaries the executor consulted. This is the `rid explain` view —
/// everything [`render_report`] shows plus the provenance record.
#[must_use]
pub fn render_explanation(report: &IppReport, program: Option<&Program>) -> String {
    let func = program.and_then(|p| p.function(&report.function));
    let mut out = render_report(report, program);
    match &report.provenance {
        Some(p) => {
            let _ = writeln!(out, "  why the checker paired these paths:");
            let _ = writeln!(
                out,
                "    side A (kept, path #{:<3}) constraint: {}",
                report.path_a, p.cons_a
            );
            let _ = writeln!(
                out,
                "    side B (drop, path #{:<3}) constraint: {}",
                report.path_b, p.cons_b
            );
            let _ = writeln!(
                out,
                "    solver verdict on A ∧ B: {} — the paths are{} \
                 distinguishable by a caller",
                if p.joint_sat { "satisfiable" } else { "unsatisfiable" },
                if p.joint_sat { " not" } else { "" }
            );
            let _ = writeln!(
                out,
                "    refcount {} moves {:+} on A but {:+} on B, so one side is wrong",
                pretty_term(&report.refcount, func),
                report.change_a,
                report.change_b
            );
            if p.callees.is_empty() {
                let _ = writeln!(out, "    callee summaries used: none (leaf function)");
            } else {
                let _ = writeln!(
                    out,
                    "    callee summaries used: {}",
                    p.callees.join(", ")
                );
            }
            match p.refutation {
                Some(crate::refute::RefuteVerdict::Confirmed) => {
                    let _ = writeln!(
                        out,
                        "    refutation: confirmed — still satisfiable with \
                         disequality splitting fully enabled and callee \
                         constraints conjoined"
                    );
                }
                Some(crate::refute::RefuteVerdict::Inconclusive) => {
                    let _ = writeln!(
                        out,
                        "    refutation: inconclusive — the exact re-check ran \
                         out of fuel; kept (exhaustion never refutes)"
                    );
                }
                // Refuted reports are dropped by the pass; a persisted one
                // can only come from a hand-edited state file.
                Some(crate::refute::RefuteVerdict::Refuted) => {
                    let _ = writeln!(
                        out,
                        "    refutation: refuted — joint constraints are \
                         unsatisfiable under the exact check (spurious)"
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "    refutation: not run (--no-refute or pre-refutation \
                         state file)"
                    );
                }
            }
        }
        None => {
            let _ = writeln!(
                out,
                "  (no provenance recorded — state file predates explainable reports)"
            );
        }
    }
    out
}

/// Renders the explanation of every report, grouped and ordered.
#[must_use]
pub fn render_explanations(reports: &[IppReport], program: Option<&Program>) -> String {
    if reports.is_empty() {
        return "no inconsistent path pairs found\n".to_owned();
    }
    let mut out = String::new();
    for (i, report) in reports.iter().enumerate() {
        let _ = writeln!(out, "=== explanation {} of {} ===", i + 1, reports.len());
        out.push_str(&render_explanation(report, program));
    }
    out
}

/// A heuristic classification of an IPP report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BugKind {
    /// Some path leaves the refcount elevated — the count can never return
    /// to zero (characteristic 3 violation): a missed release / leak, the
    /// Figure 8/9 shape.
    MissedRelease,
    /// Some path decrements more than its pair — the count can go negative
    /// (characteristic 4 violation): a double put / use after suspend.
    OverRelease,
    /// The inconsistent refcount belongs to an object that never escapes
    /// the function: a leaked local reference (common in Python/C code).
    LocalLeak,
}

impl BugKind {
    /// Short human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BugKind::MissedRelease => "missed release (refcount never returns to zero)",
            BugKind::OverRelease => "over release (refcount can go negative)",
            BugKind::LocalLeak => "leaked local reference",
        }
    }
}

/// Classifies a report heuristically (see [`BugKind`]).
#[must_use]
pub fn classify_report(report: &IppReport) -> BugKind {
    if let Some(root) = report.refcount.root_var() {
        if root.kind == VarKind::Opaque {
            return BugKind::LocalLeak;
        }
    }
    if report.change_a.max(report.change_b) > 0 {
        BugKind::MissedRelease
    } else {
        BugKind::OverRelease
    }
}

/// Renders a [`Term`] with source-level names for formal arguments of
/// `func` (`[arg0].pm` becomes `[dev].pm`).
#[must_use]
pub fn pretty_term(term: &Term, func: Option<&Function>) -> String {
    match term {
        Term::Int(v) => v.to_string(),
        Term::Var(var) => pretty_var(*var, func),
        Term::Field(base, field) => format!("{}.{field}", pretty_term(base, func)),
    }
}

fn pretty_var(var: Var, func: Option<&Function>) -> String {
    match (var.kind, func) {
        (VarKind::Formal, Some(f)) => match f.params().get(var.id as usize) {
            Some(name) => format!("[{name}]"),
            None => var.to_string(),
        },
        (VarKind::Opaque, _) => format!("<local object #{}>", var.id),
        _ => var.to_string(),
    }
}

/// Renders one report as human-readable text.
///
/// When `program` is given, formal-argument indices are replaced by the
/// function's parameter names.
#[must_use]
pub fn render_report(report: &IppReport, program: Option<&Program>) -> String {
    let func = program.and_then(|p| p.function(&report.function));
    let kind = classify_report(report);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "[{}] inconsistent refcount changes in `{}`{}",
        kind.label(),
        report.function,
        if report.callback { " (callback contract)" } else { "" }
    );
    let _ = writeln!(
        out,
        "  refcount : {}",
        pretty_term(&report.refcount, func)
    );
    let _ = writeln!(
        out,
        "  path #{:<3} changes it by {:+}; path #{:<3} by {:+}",
        report.path_a, report.change_a, report.path_b, report.change_b
    );
    let _ = writeln!(
        out,
        "  both paths are feasible and indistinguishable under: {}",
        report.witness
    );
    if !report.witness_model.is_empty() {
        let assignments: Vec<String> = report
            .witness_model
            .iter()
            .map(|(t, v)| format!("{} = {v}", pretty_term(t, func)))
            .collect();
        let _ = writeln!(out, "  example  : {}", assignments.join(", "));
    }
    let _ = writeln!(
        out,
        "  traces   : kept {:?}, discarded {:?}",
        report.trace_a.iter().map(|b| b.0).collect::<Vec<_>>(),
        report.trace_b.iter().map(|b| b.0).collect::<Vec<_>>()
    );
    out
}

/// Renders all reports of a result, grouped and ordered.
#[must_use]
pub fn render_reports(reports: &[IppReport], program: Option<&Program>) -> String {
    if reports.is_empty() {
        return "no inconsistent path pairs found\n".to_owned();
    }
    let mut out = String::new();
    for (i, report) in reports.iter().enumerate() {
        let _ = writeln!(out, "--- report {} of {} ---", i + 1, reports.len());
        out.push_str(&render_report(report, program));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apis::linux_dpm_apis;
    use crate::driver::{analyze_sources, AnalysisOptions};
    use rid_solver::Conj;

    fn sample_report() -> IppReport {
        IppReport {
            function: "f".into(),
            refcount: Term::var(Var::formal(0)).field("pm"),
            change_a: 1,
            change_b: 0,
            path_a: 0,
            path_b: 1,
            trace_a: vec![],
            trace_b: vec![],
            witness: Conj::truth(),
            callback: false,
            witness_model: Vec::new(),
            provenance: None,
        }
    }

    #[test]
    fn missed_release_classification() {
        assert_eq!(classify_report(&sample_report()), BugKind::MissedRelease);
    }

    #[test]
    fn over_release_classification() {
        let mut r = sample_report();
        r.change_a = -1;
        r.change_b = 0;
        assert_eq!(classify_report(&r), BugKind::OverRelease);
    }

    #[test]
    fn local_leak_classification() {
        let mut r = sample_report();
        r.refcount = Term::var(Var::opaque(0, 0)).field("rc");
        assert_eq!(classify_report(&r), BugKind::LocalLeak);
    }

    #[test]
    fn pretty_terms_use_parameter_names() {
        let src = r#"module m;
            extern fn pm_runtime_get_sync;
            fn f(dev) {
                let ret = pm_runtime_get_sync(dev);
                if (ret < 0) { return 0; }
                pm_runtime_put(dev);
                return 0;
            }"#;
        let program = rid_frontend::parse_program([src]).unwrap();
        let result = analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default())
            .unwrap();
        assert!(!result.reports.is_empty());
        let text = render_report(&result.reports[0], Some(&program));
        assert!(text.contains("[dev].pm"), "got: {text}");
        assert!(text.contains('f'));
    }

    #[test]
    fn explanation_renders_provenance_or_says_why_not() {
        let mut r = sample_report();
        r.provenance = Some(crate::ipp::ReportProvenance {
            cons_a: Conj::truth(),
            cons_b: Conj::truth(),
            joint_sat: true,
            callees: vec!["pm_runtime_get_sync".into()],
            refutation: Some(crate::refute::RefuteVerdict::Confirmed),
        });
        let text = render_explanation(&r, None);
        assert!(text.contains("side A"), "got: {text}");
        assert!(text.contains("satisfiable"));
        assert!(text.contains("callee summaries used: pm_runtime_get_sync"));
        assert!(text.contains("refutation: confirmed"));
        let legacy = render_explanation(&sample_report(), None);
        assert!(legacy.contains("no provenance recorded"));
    }

    #[test]
    fn analysis_reports_carry_explainable_provenance() {
        let src = r#"module m;
            extern fn pm_runtime_get_sync;
            fn f(dev) {
                let ret = pm_runtime_get_sync(dev);
                if (ret < 0) { return 0; }
                pm_runtime_put(dev);
                return 0;
            }"#;
        let result = analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default())
            .unwrap();
        assert!(!result.reports.is_empty());
        for report in &result.reports {
            let p = report.provenance.as_ref().expect("fresh reports carry provenance");
            assert!(p.joint_sat);
            assert!(
                p.callees.iter().any(|c| c == "pm_runtime_get_sync"),
                "callees: {:?}",
                p.callees
            );
        }
        let text = render_explanations(&result.reports, None);
        assert!(text.contains("explanation 1 of"));
        assert!(text.contains("solver verdict"));
    }

    #[test]
    fn render_reports_empty_and_nonempty() {
        assert!(render_reports(&[], None).contains("no inconsistent"));
        let text = render_reports(&[sample_report()], None);
        assert!(text.contains("report 1 of 1"));
        assert!(text.contains("[arg0].pm"));
    }
}
