//! Function summaries (§4.3 of the paper).
//!
//! A summary is a set of *entries*; each entry records, under a constraint
//! on the arguments and the return value, how the function changes
//! refcounts. The return value itself is encoded inside the constraint as
//! conditions on the `[0]` slot, exactly as in Figure 2 of the paper.

use std::collections::BTreeMap;

use rid_ir::Sym;
use rid_solver::{Conj, Subst, Term, Var, VarKind};
use serde::{Deserialize, Serialize};

/// One summary entry: `(cons, changes, return)` from §4.3.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SummaryEntry {
    /// Constraint on arguments and the return slot `[0]`.
    pub cons: Conj,
    /// Map from refcount expressions to their net change along the paths
    /// this entry summarizes. Zero changes are not stored.
    #[serde(with = "changes_serde")]
    pub changes: BTreeMap<Term, i64>,
    /// Human-readable return expression (`None` for void functions or
    /// unconstrained returns); the analysable content lives in `cons`.
    pub ret: Option<Term>,
}

impl SummaryEntry {
    /// The unconstrained, change-free entry (used as the *default summary*
    /// for functions the analysis skips, §5.2).
    #[must_use]
    pub fn default_entry() -> SummaryEntry {
        SummaryEntry { cons: Conj::truth(), changes: BTreeMap::new(), ret: None }
    }

    /// The change recorded for `rc` (zero when absent).
    #[must_use]
    pub fn change(&self, rc: &Term) -> i64 {
        self.changes.get(rc).copied().unwrap_or(0)
    }

    /// Whether the entry changes any refcount.
    #[must_use]
    pub fn has_changes(&self) -> bool {
        self.changes.values().any(|&delta| delta != 0)
    }

    /// Removes zero-valued change records (canonical form).
    pub fn prune_zero_changes(&mut self) {
        self.changes.retain(|_, delta| *delta != 0);
    }

    /// Instantiates the entry at a call site (Algorithm 1, line 2):
    /// formal arguments are replaced by the actual argument terms, the
    /// return slot `[0]` by `ret_var`, and callee-opaque objects by fresh
    /// caller-side opaque variables derived deterministically from
    /// `site_id` (so that two paths sharing a prefix agree on names).
    #[must_use]
    pub fn instantiate(&self, actuals: &[Term], ret_var: &Term, site_id: u32) -> SummaryEntry {
        let mut subst = Subst::new();
        let mut vars = Vec::new();
        self.cons.collect_vars(&mut vars);
        for key in self.changes.keys() {
            key.collect_vars(&mut vars);
        }
        if let Some(ret) = &self.ret {
            ret.collect_vars(&mut vars);
        }
        vars.sort_unstable();
        vars.dedup();
        for var in vars {
            match var.kind {
                VarKind::Formal => {
                    let replacement = actuals
                        .get(var.id as usize)
                        .cloned()
                        // Arity mismatch: treat the missing argument as an
                        // unconstrained opaque value.
                        .unwrap_or_else(|| {
                            Term::var(Var::opaque(site_id, 1000 + var.id))
                        });
                    subst.insert(var, replacement);
                }
                VarKind::Ret => {
                    subst.insert(var, ret_var.clone());
                }
                VarKind::Opaque => {
                    // Deterministic renaming into the caller's namespace.
                    subst.insert(var, Term::var(Var::opaque(site_id, var.id * 64 + var.sub)));
                }
                // Summaries are finalized before being stored, so they never
                // contain locals/call-results/randoms; tolerate them by
                // leaving them unmapped (they act as opaque atoms).
                VarKind::Local | VarKind::CallRet | VarKind::Random => {}
            }
        }
        let mut changes = BTreeMap::new();
        for (rc, delta) in &self.changes {
            let rc = rc.substitute(&subst);
            // Changes keyed on constants (e.g. a null actual argument)
            // cannot denote a refcount; drop them.
            if rc.root_var().is_some() {
                *changes.entry(rc).or_insert(0) += delta;
            }
        }
        changes.retain(|_, delta| *delta != 0);
        SummaryEntry {
            cons: self.cons.substitute(&subst),
            changes,
            ret: self.ret.as_ref().map(|r| r.substitute(&subst)),
        }
    }
}

/// JSON-friendly encoding of the change map: a list of `(term, delta)`
/// pairs (JSON object keys must be strings, and refcount keys are terms).
mod changes_serde {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<Term, i64>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let pairs: Vec<(&Term, &i64)> = map.iter().collect();
        serde::Serialize::serialize(&pairs, serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<BTreeMap<Term, i64>, D::Error> {
        let pairs: Vec<(Term, i64)> = serde::Deserialize::deserialize(deserializer)?;
        Ok(pairs.into_iter().collect())
    }
}

/// A function summary: a set of entries plus bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Summary {
    /// Name of the summarized function.
    pub func: Sym,
    /// The summary entries.
    pub entries: Vec<SummaryEntry>,
    /// Whether analysis limits were hit while summarizing, in which case a
    /// default entry was added (§5.2).
    pub partial: bool,
}

impl Summary {
    /// Creates an empty summary for `func`.
    #[must_use]
    pub fn new(func: impl Into<Sym>) -> Summary {
        Summary { func: func.into(), entries: Vec::new(), partial: false }
    }

    /// The *default summary*: a single unconstrained entry with no changes.
    /// Used for functions that are skipped or exceed analysis limits (§5.2).
    #[must_use]
    pub fn default_for(func: impl Into<Sym>) -> Summary {
        Summary {
            func: func.into(),
            entries: vec![SummaryEntry::default_entry()],
            partial: true,
        }
    }

    /// Whether any entry changes a refcount.
    #[must_use]
    pub fn changes_refcounts(&self) -> bool {
        self.entries.iter().any(SummaryEntry::has_changes)
    }

    /// Deduplicates identical entries (the paper merges overlapping
    /// equal-change entries; since our constraints are conjunctive we keep
    /// distinct overlapping entries and only drop exact duplicates — see
    /// `DESIGN.md` §4.5).
    pub fn dedup_entries(&mut self) {
        let mut seen = Vec::new();
        self.entries.retain(|e| {
            let mut key = e.clone();
            key.cons.normalize();
            if seen.contains(&key) {
                false
            } else {
                seen.push(key);
                true
            }
        });
    }
}

/// A database of function summaries — predefined API specifications (§5.1)
/// plus everything computed so far by the bottom-up traversal.
///
/// Keyed by interned [`Sym`] handles: lookups on the hot `exec_call` path
/// compare 4-byte ids, while iteration order (and therefore every
/// serialized artifact) stays in *string* order because `Sym`'s `Ord`
/// resolves to the text — the persisted JSON is byte-identical to the
/// `String`-keyed representation it replaces, via the manual serde impls
/// below.
#[derive(Clone, Debug, Default)]
pub struct SummaryDb {
    map: BTreeMap<Sym, Summary>,
}

impl Serialize for SummaryDb {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut pairs = Vec::with_capacity(self.map.len());
        for (name, summary) in &self.map {
            pairs.push((
                name.as_str().to_owned(),
                serde::__private::to_value_err::<_, S::Error>(summary)?,
            ));
        }
        serializer
            .serialize_value(serde::Value::Map(vec![("map".to_owned(), serde::Value::Map(pairs))]))
    }
}

impl<'de> Deserialize<'de> for SummaryDb {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let fields = serde::__private::expect_map::<D::Error>(deserializer.take_value()?)?;
        let mut map = BTreeMap::new();
        for (field, value) in fields {
            if field == "map" {
                for (name, entry) in serde::__private::expect_map::<D::Error>(value)? {
                    let summary = Summary::deserialize(
                        serde::__private::ValueDeserializer::<D::Error>::new(entry),
                    )?;
                    map.insert(Sym::new(&name), summary);
                }
            }
        }
        Ok(SummaryDb { map })
    }
}

impl SummaryDb {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> SummaryDb {
        SummaryDb::default()
    }

    /// Looks up a summary by function name. Never grows the intern table
    /// for unknown names.
    #[must_use]
    pub fn get(&self, func: &str) -> Option<&Summary> {
        self.map.get(&Sym::lookup(func)?)
    }

    /// Looks up a summary by interned handle (the hash-4-bytes flavor of
    /// [`SummaryDb::get`], used on the `exec_call` hot path).
    #[must_use]
    pub fn get_sym(&self, func: Sym) -> Option<&Summary> {
        self.map.get(&func)
    }

    /// Whether a summary exists for `func`.
    #[must_use]
    pub fn contains(&self, func: &str) -> bool {
        Sym::lookup(func).is_some_and(|sym| self.map.contains_key(&sym))
    }

    /// Inserts (or replaces) a summary.
    pub fn insert(&mut self, summary: Summary) {
        self.map.insert(summary.func, summary);
    }

    /// Removes `func`'s summary, returning it if present. Incremental
    /// re-analysis uses this to evict the affected cone from a previous
    /// run's database instead of rebuilding the whole database.
    pub fn remove(&mut self, func: &str) -> Option<Summary> {
        self.map.remove(&Sym::lookup(func)?)
    }

    /// Merges another database into this one (later insertions win).
    pub fn merge(&mut self, other: SummaryDb) {
        self.map.extend(other.map);
    }

    /// Number of summaries stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the database is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over stored summaries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Summary> {
        self.map.values()
    }

    /// Names of functions whose summaries change refcounts — the seed set
    /// for classification phase 1 (§5.2).
    pub fn refcount_changing_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.map.values().filter(|s| s.changes_refcounts()).map(|s| s.func.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_ir::Pred;
    use rid_solver::Lit;

    fn get_sync_entry() -> SummaryEntry {
        // pm_runtime_get_sync: cons True, change [dev].pm +1, return [0]
        let mut changes = BTreeMap::new();
        changes.insert(Term::var(Var::formal(0)).field("pm"), 1);
        SummaryEntry { cons: Conj::truth(), changes, ret: Some(Term::var(Var::ret())) }
    }

    #[test]
    fn default_entry_is_changeless() {
        let e = SummaryEntry::default_entry();
        assert!(!e.has_changes());
        assert!(e.cons.is_truth());
        assert_eq!(e.change(&Term::var(Var::formal(0))), 0);
    }

    #[test]
    fn instantiation_substitutes_actuals() {
        let entry = get_sync_entry();
        // Call pm_runtime_get_sync(intf.dev) where intf is formal 0 of the
        // caller; the result goes into call-site 7's return variable.
        let actual = Term::var(Var::formal(0)).field("dev");
        let ret_var = Term::var(Var::call_ret(7, 0));
        let inst = entry.instantiate(std::slice::from_ref(&actual), &ret_var, 7);
        let key = actual.field("pm");
        assert_eq!(inst.change(&key), 1);
        assert_eq!(inst.ret, Some(ret_var));
    }

    #[test]
    fn instantiation_rewrites_ret_conditions() {
        // Entry: cons [0] = null, no changes (allocation failure).
        let entry = SummaryEntry {
            cons: Conj::from_lits([Lit::new(Pred::Eq, Term::var(Var::ret()), Term::NULL)]),
            changes: BTreeMap::new(),
            ret: None,
        };
        let ret_var = Term::var(Var::call_ret(3, 0));
        let inst = entry.instantiate(&[], &ret_var, 3);
        assert_eq!(inst.cons.lits()[0].lhs, ret_var);
    }

    #[test]
    fn instantiation_drops_constant_rooted_changes() {
        let entry = get_sync_entry();
        // Passing null as the device: the change key becomes null.pm and is
        // dropped.
        let inst = entry.instantiate(&[Term::NULL], &Term::var(Var::call_ret(1, 0)), 1);
        assert!(!inst.has_changes());
    }

    #[test]
    fn instantiation_renames_opaques_deterministically() {
        let mut changes = BTreeMap::new();
        changes.insert(Term::var(Var::opaque(0, 0)).field("rc"), 1);
        let entry = SummaryEntry { cons: Conj::truth(), changes, ret: None };
        let a = entry.instantiate(&[], &Term::var(Var::call_ret(5, 0)), 5);
        let b = entry.instantiate(&[], &Term::var(Var::call_ret(5, 0)), 5);
        assert_eq!(a, b);
        let c = entry.instantiate(&[], &Term::var(Var::call_ret(6, 0)), 6);
        assert_ne!(a.changes, c.changes);
    }

    #[test]
    fn arity_mismatch_maps_to_opaque() {
        let entry = get_sync_entry();
        let inst = entry.instantiate(&[], &Term::var(Var::call_ret(2, 0)), 2);
        // The change survives, rooted at an opaque stand-in.
        assert!(inst.has_changes());
        let root = inst.changes.keys().next().unwrap().root_var().unwrap();
        assert_eq!(root.kind, VarKind::Opaque);
    }

    #[test]
    fn summary_dedup() {
        let mut s = Summary::new("f");
        s.entries.push(SummaryEntry::default_entry());
        s.entries.push(SummaryEntry::default_entry());
        s.entries.push(get_sync_entry());
        s.dedup_entries();
        assert_eq!(s.entries.len(), 2);
    }

    #[test]
    fn db_roundtrip_and_seeds() {
        let mut db = SummaryDb::new();
        assert!(db.is_empty());
        db.insert(Summary::default_for("skipped"));
        let mut s = Summary::new("pm_runtime_get");
        s.entries.push(get_sync_entry());
        db.insert(s);
        assert_eq!(db.len(), 2);
        assert!(db.contains("pm_runtime_get"));
        let seeds: Vec<&str> = db.refcount_changing_names().collect();
        assert_eq!(seeds, vec!["pm_runtime_get"]);

        let json = serde_json::to_string(&db).unwrap();
        let back: SummaryDb = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.get("pm_runtime_get").unwrap().entries,
            db.get("pm_runtime_get").unwrap().entries
        );
    }

    #[test]
    fn merge_prefers_latest() {
        let mut a = SummaryDb::new();
        a.insert(Summary::default_for("f"));
        let mut b = SummaryDb::new();
        let mut s = Summary::new("f");
        s.entries.push(get_sync_entry());
        b.insert(s);
        a.merge(b);
        assert!(a.get("f").unwrap().changes_refcounts());
    }
}
