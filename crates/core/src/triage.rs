//! Report triage: stable content-addressed report hashes, the
//! `.ridignore` suppression file, and new/resolved/unchanged diff
//! classification. The normative contract (hash inputs and guarantees,
//! `.ridignore` grammar, `rid diff` exit codes) lives in `REPORTS.md`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::cache::Fnv128;
use crate::ipp::IppReport;

/// Version tag folded into every report hash. Bump when the hashed field
/// set or its normalization changes — old hashes (in `.ridignore` files
/// and CI baselines) then stop matching instead of matching wrongly.
const HASH_VERSION: &str = "rid-report-hash/v1";

/// Stable content-addressed hash of one report: 32 lowercase hex digits.
///
/// Hashes the *structural identity* of the finding — function name,
/// refcount expression, the pair's change shape, the callback flag, and
/// the block-trace skeleton with block ids renumbered by first occurrence
/// (so inserting an unrelated function above this one, which shifts raw
/// block ids, does not move the hash). Path indices, the witness
/// constraint/model, and provenance are deliberately excluded: they vary
/// with enumeration details that do not change *which bug* is reported.
///
/// Guarantees (pinned by tests): equal across `--threads`, `--processes`,
/// warm vs cold cache, and edits to unrelated functions. Non-guarantees:
/// the hash moves when the pair's trace shape, refcount, or enclosing
/// function changes — renaming a function is a new finding.
#[must_use]
pub fn report_hash(report: &IppReport) -> String {
    let mut h = Fnv128::new();
    let write_str = |h: &mut Fnv128, s: &str| {
        h.write_u64(s.len() as u64);
        h.write(s.as_bytes());
    };
    write_str(&mut h, HASH_VERSION);
    write_str(&mut h, &report.function);
    write_str(&mut h, &report.refcount.to_string());
    h.write_u64(report.change_a as u64);
    h.write_u64(report.change_b as u64);
    h.write_u64(u64::from(report.callback));
    // First-occurrence renumbering shared across both traces: the skeleton
    // keeps which blocks the two paths share and in what order, while
    // forgetting the absolute ids.
    let mut renumber: BTreeMap<u32, u64> = BTreeMap::new();
    let mut skeleton = |h: &mut Fnv128, trace: &[rid_ir::BlockId]| {
        h.write_u64(trace.len() as u64);
        for block in trace {
            let next = renumber.len() as u64;
            let id = *renumber.entry(block.0).or_insert(next);
            h.write_u64(id);
        }
    };
    skeleton(&mut h, &report.trace_a);
    skeleton(&mut h, &report.trace_b);
    format!("{:032x}", h.finish())
}

/// How one report moved between a baseline and the current run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffClass {
    /// Present now, absent from the baseline.
    New,
    /// Present in the baseline, absent now.
    Resolved,
    /// Present in both.
    Unchanged,
}

impl DiffClass {
    /// Stable lowercase label used in `rid diff` output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DiffClass::New => "new",
            DiffClass::Resolved => "resolved",
            DiffClass::Unchanged => "unchanged",
        }
    }
}

/// Result of diffing the current reports against a baseline hash list.
#[derive(Clone, Debug, Default)]
pub struct ReportDiff {
    /// `(hash, index into the current report slice)` for findings absent
    /// from the baseline. Only these can fail a CI gate.
    pub new: Vec<(String, usize)>,
    /// `(hash, index)` for findings present in both.
    pub unchanged: Vec<(String, usize)>,
    /// Baseline hashes with no current counterpart (with multiplicity).
    pub resolved: Vec<String>,
}

/// Classifies `reports` against a baseline of report hashes.
///
/// The comparison is a *multiset* match: the hash excludes path indices,
/// so two genuinely distinct reports can share a hash, and each baseline
/// occurrence absorbs exactly one current occurrence. Classification is
/// deterministic — reports are visited in slice order (the analysis
/// already sorts them) and baseline multiplicities deplete first-come.
#[must_use]
pub fn classify_reports(baseline: &[String], reports: &[IppReport]) -> ReportDiff {
    let mut remaining: BTreeMap<&str, usize> = BTreeMap::new();
    for hash in baseline {
        *remaining.entry(hash.as_str()).or_insert(0) += 1;
    }
    let mut diff = ReportDiff::default();
    for (index, report) in reports.iter().enumerate() {
        let hash = report_hash(report);
        match remaining.get_mut(hash.as_str()) {
            Some(count) if *count > 0 => {
                *count -= 1;
                diff.unchanged.push((hash, index));
            }
            _ => diff.new.push((hash, index)),
        }
    }
    for (hash, count) in remaining {
        for _ in 0..count {
            diff.resolved.push(hash.to_owned());
        }
    }
    diff
}

/// A parsed `.ridignore` suppression file.
///
/// Grammar (one entry per line; see `REPORTS.md`):
/// * blank lines and lines starting with `#` are ignored;
/// * a bare 32-lowercase-hex token suppresses the report with that hash;
/// * `pattern:<glob>` suppresses every report whose *function name*
///   matches the glob (`*` matches any run of characters; no other
///   metacharacters).
#[derive(Clone, Debug, Default)]
pub struct Ridignore {
    hashes: Vec<String>,
    patterns: Vec<String>,
}

impl Ridignore {
    /// Parses suppression-file text. Malformed lines are hard errors with
    /// their 1-based line number — a typo'd hash silently suppressing
    /// nothing is exactly the failure mode a CI gate must not have.
    pub fn parse(text: &str) -> Result<Ridignore, String> {
        let mut out = Ridignore::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(glob) = line.strip_prefix("pattern:") {
                let glob = glob.trim();
                if glob.is_empty() {
                    return Err(format!(".ridignore line {}: empty pattern", i + 1));
                }
                out.patterns.push(glob.to_owned());
            } else if line.len() == 32
                && line.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
            {
                out.hashes.push(line.to_owned());
            } else {
                return Err(format!(
                    ".ridignore line {}: expected a 32-hex report hash or \
                     `pattern:<glob>`, got `{line}`",
                    i + 1
                ));
            }
        }
        Ok(out)
    }

    /// Whether a report with this hash and function name is suppressed.
    #[must_use]
    pub fn suppresses(&self, hash: &str, function: &str) -> bool {
        self.hashes.iter().any(|h| h == hash)
            || self.patterns.iter().any(|p| glob_match(p, function))
    }

    /// Whether this exact hash entry is already present. `rid suppress`
    /// uses this for idempotent appends; pattern entries are deliberately
    /// not consulted — a broad pattern should not block recording the
    /// precise hash.
    #[must_use]
    pub fn contains_hash(&self, hash: &str) -> bool {
        self.hashes.iter().any(|h| h == hash)
    }

    /// Whether the file has no entries at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty() && self.patterns.is_empty()
    }

    /// Number of entries (hashes + patterns).
    #[must_use]
    pub fn len(&self) -> usize {
        self.hashes.len() + self.patterns.len()
    }

    /// Renders the file back out (used by `rid suppress` when creating a
    /// fresh file; appends preserve the existing text instead).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for hash in &self.hashes {
            let _ = writeln!(out, "{hash}");
        }
        for pattern in &self.patterns {
            let _ = writeln!(out, "pattern:{pattern}");
        }
        out
    }
}

/// `*`-only glob match (anchored at both ends).
fn glob_match(pattern: &str, text: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == text,
        Some((prefix, rest)) => {
            let Some(tail) = text.strip_prefix(prefix) else { return false };
            // Greedy-backtracking on the remaining `*` segments: each
            // segment must appear in order; the final one must be a suffix.
            let mut tail = tail;
            let mut segments = rest.split('*').peekable();
            while let Some(seg) = segments.next() {
                if segments.peek().is_none() {
                    return tail.ends_with(seg);
                }
                match tail.find(seg) {
                    Some(pos) => tail = &tail[pos + seg.len()..],
                    None => return false,
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_ir::BlockId;
    use rid_solver::{Conj, Term, Var};

    fn report(function: &str, trace_a: &[u32], trace_b: &[u32]) -> IppReport {
        IppReport {
            function: function.to_owned(),
            refcount: Term::var(Var::formal(0)).field("pm"),
            change_a: 1,
            change_b: 0,
            path_a: 0,
            path_b: 1,
            trace_a: trace_a.iter().map(|&b| BlockId(b)).collect(),
            trace_b: trace_b.iter().map(|&b| BlockId(b)).collect(),
            witness: Conj::truth(),
            callback: false,
            witness_model: Vec::new(),
            provenance: None,
        }
    }

    #[test]
    fn hash_is_32_lowercase_hex() {
        let h = report_hash(&report("f", &[0, 1], &[0, 2]));
        assert_eq!(h.len(), 32);
        assert!(h.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)));
    }

    #[test]
    fn hash_ignores_path_indices_witness_and_provenance() {
        let a = report("f", &[0, 1], &[0, 2]);
        let mut b = a.clone();
        b.path_a = 7;
        b.path_b = 9;
        b.witness = Conj::unsat();
        b.witness_model = vec![(Term::int(0), 3)];
        assert_eq!(report_hash(&a), report_hash(&b));
    }

    #[test]
    fn hash_ignores_uniform_block_id_shift() {
        // An unrelated edit above the function shifts every raw block id;
        // first-occurrence renumbering makes the skeleton identical.
        let a = report("f", &[10, 11, 13], &[10, 12]);
        let b = report("f", &[20, 21, 23], &[20, 22]);
        assert_eq!(report_hash(&a), report_hash(&b));
    }

    #[test]
    fn hash_moves_when_the_pair_moves() {
        let base = report("f", &[0, 1], &[0, 2]);
        // Different trace shape (the pair now diverges elsewhere).
        assert_ne!(report_hash(&base), report_hash(&report("f", &[0, 1, 3], &[0, 2])));
        // Shared-block structure differs even at equal lengths.
        assert_ne!(report_hash(&base), report_hash(&report("f", &[0, 1], &[1, 2])));
        // Different function.
        assert_ne!(report_hash(&base), report_hash(&report("g", &[0, 1], &[0, 2])));
        // Different change shape.
        let mut other = base.clone();
        other.change_b = -1;
        assert_ne!(report_hash(&base), report_hash(&other));
        // Callback-contract findings are distinct findings.
        let mut cb = base;
        cb.callback = true;
        assert_ne!(report_hash(&report("f", &[0, 1], &[0, 2])), report_hash(&cb));
    }

    #[test]
    fn classify_is_a_multiset_diff() {
        let kept = report("f", &[0, 1], &[0, 2]);
        let gone_hash = report_hash(&report("g", &[0, 1], &[0, 2]));
        let fresh = report("h", &[0, 1], &[0, 2]);
        // Baseline has TWO copies of kept's hash but only one survives.
        let baseline =
            vec![report_hash(&kept), report_hash(&kept), gone_hash.clone()];
        let current = vec![kept, fresh.clone()];
        let diff = classify_reports(&baseline, &current);
        assert_eq!(diff.unchanged.len(), 1);
        assert_eq!(diff.unchanged[0].1, 0);
        assert_eq!(diff.new, vec![(report_hash(&fresh), 1)]);
        let mut resolved = diff.resolved.clone();
        resolved.sort();
        let mut expected = vec![report_hash(&current[0]), gone_hash];
        expected.sort();
        assert_eq!(resolved, expected);
    }

    #[test]
    fn ridignore_parses_hashes_patterns_comments() {
        let text = "# triaged 2026-08-07\n\n0123456789abcdef0123456789abcdef\npattern:vendor_*_probe\n";
        let ig = Ridignore::parse(text).unwrap();
        assert_eq!(ig.len(), 2);
        assert!(ig.suppresses("0123456789abcdef0123456789abcdef", "anything"));
        assert!(ig.suppresses("ffffffffffffffffffffffffffffffff", "vendor_x_probe"));
        assert!(!ig.suppresses("ffffffffffffffffffffffffffffffff", "vendor_x_remove"));
    }

    #[test]
    fn ridignore_rejects_malformed_lines_with_line_numbers() {
        let err = Ridignore::parse("0123\n").unwrap_err();
        assert!(err.contains("line 1"), "got: {err}");
        // Uppercase hex is not a valid entry (hashes are lowercase).
        assert!(Ridignore::parse("0123456789ABCDEF0123456789ABCDEF\n").is_err());
        let err = Ridignore::parse("# ok\npattern:\n").unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
    }

    #[test]
    fn ridignore_round_trips_through_render() {
        let text = "0123456789abcdef0123456789abcdef\npattern:foo_*\n";
        let ig = Ridignore::parse(text).unwrap();
        assert_eq!(ig.render(), text);
        assert!(Ridignore::parse("").unwrap().is_empty());
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("foo", "foo"));
        assert!(!glob_match("foo", "foobar"));
        assert!(glob_match("foo*", "foobar"));
        assert!(glob_match("*bar", "foobar"));
        assert!(glob_match("f*b*r", "foobar"));
        assert!(!glob_match("f*b*z", "foobar"));
        assert!(glob_match("*", ""));
    }
}
