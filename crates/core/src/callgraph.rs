//! Call graph construction, SCC condensation and traversal orders (§4.2,
//! §5.2 of the paper).
//!
//! Functions are summarized in reverse topological order of the call graph
//! so callee summaries exist before their callers are analyzed. Recursion
//! (cycles) is broken arbitrarily but deterministically: within an SCC,
//! calls to functions not yet summarized fall back to the default summary.

use std::collections::HashMap;

use rid_ir::Program;

/// The call graph over a program's defined functions.
///
/// Calls to functions without a definition (externs / predefined APIs) are
/// recorded separately in [`CallGraph::unknown_callees`].
#[derive(Clone, Debug)]
pub struct CallGraph {
    names: Vec<String>,
    index: HashMap<String, usize>,
    /// `edges[i]` = indices of defined functions called by function `i`
    /// (deduplicated, sorted).
    edges: Vec<Vec<usize>>,
    /// `callers[i]` = indices of defined functions calling function `i`.
    callers: Vec<Vec<usize>>,
    /// Names of called-but-undefined functions per function.
    unknown: Vec<Vec<String>>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    #[must_use]
    pub fn build(program: &Program) -> CallGraph {
        let functions = program.functions();
        let names: Vec<String> = functions.iter().map(|f| f.name().to_owned()).collect();
        let index: HashMap<String, usize> =
            names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
        let mut edges = vec![Vec::new(); names.len()];
        let mut callers = vec![Vec::new(); names.len()];
        let mut unknown = vec![Vec::new(); names.len()];
        for (i, func) in functions.iter().enumerate() {
            for callee in func.callees() {
                match index.get(callee) {
                    Some(&j) => edges[i].push(j),
                    None => unknown[i].push(callee.to_owned()),
                }
            }
            edges[i].sort_unstable();
            edges[i].dedup();
            unknown[i].sort();
            unknown[i].dedup();
        }
        for (i, callees) in edges.iter().enumerate() {
            for &j in callees {
                callers[j].push(i);
            }
        }
        CallGraph { names, index, edges, callers, unknown }
    }

    /// Number of functions (nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The function name at `index`.
    #[must_use]
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// The node index of `name`.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Defined callees of node `i`.
    #[must_use]
    pub fn callees(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }

    /// Callers of node `i`.
    #[must_use]
    pub fn callers(&self, i: usize) -> &[usize] {
        &self.callers[i]
    }

    /// Undefined (extern) callees of node `i`.
    #[must_use]
    pub fn unknown_callees(&self, i: usize) -> &[String] {
        &self.unknown[i]
    }

    /// Strongly connected components in *reverse topological order*
    /// (callees before callers), computed with Tarjan's algorithm. Within
    /// a component, node order is deterministic.
    #[must_use]
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        // Iterative Tarjan.
        #[derive(Clone, Copy)]
        struct NodeData {
            index: u32,
            lowlink: u32,
            on_stack: bool,
        }
        const UNVISITED: u32 = u32::MAX;
        let n = self.len();
        let mut data = vec![NodeData { index: UNVISITED, lowlink: 0, on_stack: false }; n];
        let mut next_index = 0u32;
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        // Explicit DFS stack: (node, next child position).
        for start in 0..n {
            if data[start].index != UNVISITED {
                continue;
            }
            let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
            data[start].index = next_index;
            data[start].lowlink = next_index;
            next_index += 1;
            stack.push(start);
            data[start].on_stack = true;

            while let Some(&mut (v, ref mut child)) = call_stack.last_mut() {
                if *child < self.edges[v].len() {
                    let w = self.edges[v][*child];
                    *child += 1;
                    if data[w].index == UNVISITED {
                        data[w].index = next_index;
                        data[w].lowlink = next_index;
                        next_index += 1;
                        stack.push(w);
                        data[w].on_stack = true;
                        call_stack.push((w, 0));
                    } else if data[w].on_stack {
                        data[v].lowlink = data[v].lowlink.min(data[w].index);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&mut (parent, _)) = call_stack.last_mut() {
                        let low = data[v].lowlink;
                        data[parent].lowlink = data[parent].lowlink.min(low);
                    }
                    if data[v].lowlink == data[v].index {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            data[w].on_stack = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        component.sort_unstable();
                        sccs.push(component);
                    }
                }
            }
        }
        // Tarjan emits SCCs in reverse topological order already (a
        // component is emitted only after all components it reaches).
        sccs
    }

    /// Function indices in reverse topological order (callees first),
    /// with recursion broken by SCC-internal index order.
    #[must_use]
    pub fn reverse_topological_order(&self) -> Vec<usize> {
        self.sccs().into_iter().flatten().collect()
    }

    /// The SCC condensation of the call graph: one node per strongly
    /// connected component, with deduplicated cross-component edges in
    /// both directions. Components are in reverse topological order
    /// (callee components have smaller indices), so `callee_comps[c]`
    /// only contains indices `< c` and `caller_comps[c]` only `> c`.
    ///
    /// This is the dependency structure the work-stealing scheduler
    /// counts over: a component is ready when every component in its
    /// `callee_comps` has been summarized.
    #[must_use]
    pub fn condensation(&self) -> Condensation {
        let members = self.sccs();
        let mut comp_of = vec![0usize; self.len()];
        for (c, comp) in members.iter().enumerate() {
            for &v in comp {
                comp_of[v] = c;
            }
        }
        let mut callee_comps: Vec<Vec<usize>> = vec![Vec::new(); members.len()];
        let mut caller_comps: Vec<Vec<usize>> = vec![Vec::new(); members.len()];
        for (c, comp) in members.iter().enumerate() {
            let callees = &mut callee_comps[c];
            for &v in comp {
                for &w in &self.edges[v] {
                    let cw = comp_of[w];
                    if cw != c {
                        callees.push(cw);
                    }
                }
            }
            callees.sort_unstable();
            callees.dedup();
            for &cw in callees.iter() {
                caller_comps[cw].push(c);
            }
        }
        // Caller lists were filled in ascending caller order already.
        Condensation { members, comp_of, callee_comps, caller_comps }
    }

    /// Condensation levels: `level[i]` is the length of the longest chain
    /// of SCCs below function `i`'s component. All functions of level `k`
    /// only call functions of levels `< k` (or their own SCC), so each
    /// level can be analyzed in parallel once previous levels are done.
    #[must_use]
    pub fn levels(&self) -> Vec<usize> {
        let sccs = self.sccs();
        let mut comp_of = vec![0usize; self.len()];
        for (c, comp) in sccs.iter().enumerate() {
            for &v in comp {
                comp_of[v] = c;
            }
        }
        //

        // sccs are in reverse topological order, so callee components have
        // smaller indices; one pass suffices.
        let mut comp_level = vec![0usize; sccs.len()];
        for (c, comp) in sccs.iter().enumerate() {
            let mut level = 0;
            for &v in comp {
                for &w in &self.edges[v] {
                    let cw = comp_of[w];
                    if cw != c {
                        level = level.max(comp_level[cw] + 1);
                    }
                }
            }
            comp_level[c] = level;
        }
        (0..self.len()).map(|v| comp_level[comp_of[v]]).collect()
    }
}

/// The SCC condensation of a [`CallGraph`] (see
/// [`CallGraph::condensation`]). Component indices are positions in
/// `members`, which is in reverse topological order.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// `members[c]` = function indices of component `c`, ascending.
    pub members: Vec<Vec<usize>>,
    /// `comp_of[i]` = the component containing function `i`.
    pub comp_of: Vec<usize>,
    /// Distinct components directly called by component `c` (ascending,
    /// never contains `c` itself).
    pub callee_comps: Vec<Vec<usize>>,
    /// Distinct components directly calling component `c` (ascending,
    /// never contains `c` itself).
    pub caller_comps: Vec<Vec<usize>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_frontend::parse_program;

    fn graph(srcs: &[&str]) -> CallGraph {
        CallGraph::build(&parse_program(srcs.iter().copied()).unwrap())
    }

    #[test]
    fn simple_chain() {
        let g = graph(&["module m; fn a() { b(); } fn b() { c(); } fn c() { return; }"]);
        let order = g.reverse_topological_order();
        let names: Vec<&str> = order.iter().map(|&i| g.name(i)).collect();
        let pos = |n: &str| names.iter().position(|&x| x == n).unwrap();
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn extern_calls_are_unknown() {
        let g = graph(&["module m; fn a() { pm_runtime_get(x); }"]);
        let i = g.index_of("a").unwrap();
        assert!(g.callees(i).is_empty());
        assert_eq!(g.unknown_callees(i), &["pm_runtime_get".to_owned()]);
    }

    #[test]
    fn recursion_forms_one_scc() {
        let g = graph(&["module m; fn a() { b(); } fn b() { a(); } fn c() { a(); }"]);
        let sccs = g.sccs();
        let sizes: Vec<usize> = sccs.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2));
        // c's SCC must come after the {a,b} SCC (reverse topological).
        let ab_pos = sccs.iter().position(|c| c.len() == 2).unwrap();
        let c_idx = g.index_of("c").unwrap();
        let c_pos = sccs.iter().position(|comp| comp.contains(&c_idx)).unwrap();
        assert!(ab_pos < c_pos);
    }

    #[test]
    fn self_recursion() {
        let g = graph(&["module m; fn f(n) { f(n); return; }"]);
        assert_eq!(g.sccs(), vec![vec![0]]);
    }

    #[test]
    fn levels_respect_dependencies() {
        let g = graph(&[
            "module m; fn a() { b(); c(); } fn b() { d(); } fn c() { d(); } fn d() { return; }",
        ]);
        let levels = g.levels();
        let l = |n: &str| levels[g.index_of(n).unwrap()];
        assert_eq!(l("d"), 0);
        assert_eq!(l("b"), 1);
        assert_eq!(l("c"), 1);
        assert_eq!(l("a"), 2);
    }

    #[test]
    fn callers_are_inverse_of_callees() {
        let g = graph(&["module m; fn a() { b(); } fn b() { return; }"]);
        let a = g.index_of("a").unwrap();
        let b = g.index_of("b").unwrap();
        assert_eq!(g.callees(a), &[b]);
        assert_eq!(g.callers(b), &[a]);
        assert!(g.callers(a).is_empty());
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn condensation_edges_are_deduplicated_and_directed() {
        let g = graph(&[
            "module m; fn a() { b(); c(); } fn b() { d(); d(); } fn c() { d(); } fn d() { return; }",
        ]);
        let cond = g.condensation();
        assert_eq!(cond.members.len(), 4);
        let comp = |n: &str| cond.comp_of[g.index_of(n).unwrap()];
        // d's component has two distinct caller components (b's and c's).
        assert_eq!(cond.caller_comps[comp("d")].len(), 2);
        assert_eq!(cond.callee_comps[comp("d")], Vec::<usize>::new());
        // a depends on b and c; b and c each depend only on d.
        assert_eq!(cond.callee_comps[comp("a")].len(), 2);
        assert_eq!(cond.callee_comps[comp("b")], vec![comp("d")]);
        // Reverse topological: callee components come first.
        for (c, callees) in cond.callee_comps.iter().enumerate() {
            for &cw in callees {
                assert!(cw < c, "callee component must precede caller");
            }
        }
        for (c, callers) in cond.caller_comps.iter().enumerate() {
            for &cw in callers {
                assert!(cw > c, "caller component must follow callee");
            }
        }
    }

    #[test]
    fn condensation_contracts_recursion() {
        let g = graph(&[
            "module m; fn a() { b(); } fn b() { a(); c(); } fn c() { return; }",
        ]);
        let cond = g.condensation();
        assert_eq!(cond.members.len(), 2);
        let ab = cond.comp_of[g.index_of("a").unwrap()];
        assert_eq!(ab, cond.comp_of[g.index_of("b").unwrap()]);
        let c = cond.comp_of[g.index_of("c").unwrap()];
        // The intra-SCC a↔b edges vanish; only the edge to c survives.
        assert_eq!(cond.callee_comps[ab], vec![c]);
        assert_eq!(cond.caller_comps[c], vec![ab]);
    }

    #[test]
    fn diamond_reverse_topo_is_valid() {
        let g = graph(&[
            "module m; fn a() { b(); c(); } fn b() { d(); } fn c() { d(); } fn d() { return; }",
        ]);
        let order = g.reverse_topological_order();
        let pos: HashMap<usize, usize> =
            order.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        for i in 0..g.len() {
            for &j in g.callees(i) {
                assert!(pos[&j] < pos[&i], "callee must precede caller");
            }
        }
    }
}
