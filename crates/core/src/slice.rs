//! Intraprocedural static backward slicing (§5.2 of the paper).
//!
//! Classification phase 2 computes, for each function, a backward slice
//! whose criteria are the function's return value and the actual arguments
//! passed to refcount-changing callees. Any non-refcount-changing callee
//! whose *result* lands in the slice may influence refcount behaviour and
//! is therefore classified as category 2.
//!
//! The slice here is a def-use closure augmented with the branch-condition
//! variables of conditional branches (control dependence approximation):
//! which refcount call executes is decided by branches, so their condition
//! variables — and everything they depend on — belong in the slice.

use std::collections::HashSet;

use rid_ir::{Function, Inst, Operand, Rvalue, Sym, Terminator};

/// The variables in the backward slice of `func` for the §5.2 criteria.
///
/// Criteria: operands of `return` terminators, actual arguments of calls
/// to functions in `refcount_changing`, and (as a control-dependence
/// approximation) all branch condition variables when the function calls a
/// refcount-changing function at all.
#[must_use]
pub fn slice_variables(
    func: &Function,
    refcount_changing: &dyn Fn(&str) -> bool,
) -> HashSet<Sym> {
    let mut slice: HashSet<Sym> = HashSet::new();

    // Seed: return operands.
    for block in func.blocks() {
        if let Terminator::Return(Some(Operand::Var(name))) = block.term {
            slice.insert(*name);
        }
    }

    // Seed: arguments to refcount-changing calls; plus branch conditions
    // when such calls exist (they control which calls run).
    let mut calls_refcount_api = false;
    for (_, inst) in func.insts() {
        let (callee, args) = match inst {
            Inst::Call { callee, args } => (callee, args),
            Inst::Assign { rvalue: Rvalue::Call { callee, args }, .. } => (callee, args),
            _ => continue,
        };
        if refcount_changing(callee.as_str()) {
            calls_refcount_api = true;
            for arg in args {
                if let Operand::Var(name) = arg {
                    slice.insert(*name);
                }
            }
        }
    }
    if calls_refcount_api {
        for block in func.blocks() {
            if let Terminator::Branch { cond, .. } = block.term {
                slice.insert(*cond);
            }
        }
    }

    // Backward def-use closure (flow-insensitive fixpoint: a variable in
    // the slice pulls in everything its defining instructions read).
    loop {
        let mut changed = false;
        for (_, inst) in func.insts() {
            let Some(dst) = inst.def_sym() else { continue };
            if !slice.contains(&dst) {
                continue;
            }
            for used in inst.used_var_syms() {
                if slice.insert(used) {
                    changed = true;
                }
            }
        }
        if !changed {
            return slice;
        }
    }
}

/// Flow-aware variant of [`slice_variables`] using real control
/// dependence (Ferrante et al., via [`rid_ir::control_dependencies`])
/// instead of the all-branches approximation: only branches that actually
/// decide whether a refcount-changing call executes contribute their
/// condition variables.
///
/// Always a subset of [`slice_variables`] (the approximation is a sound
/// over-approximation of this).
#[must_use]
pub fn slice_variables_precise(
    func: &Function,
    refcount_changing: &dyn Fn(&str) -> bool,
) -> HashSet<Sym> {
    let mut slice: HashSet<Sym> = HashSet::new();

    // Seed: return operands.
    for block in func.blocks() {
        if let Terminator::Return(Some(Operand::Var(name))) = block.term {
            slice.insert(*name);
        }
    }

    // Seed: arguments of refcount-changing calls, plus the condition
    // variables of exactly the branches those calls are control-dependent
    // on (transitively up the dependence chain).
    let deps = rid_ir::control_dependencies(func);
    let mut dep_blocks: Vec<rid_ir::BlockId> = Vec::new();
    for (id, inst) in func.insts() {
        let (callee, args) = match inst {
            Inst::Call { callee, args } => (callee, args),
            Inst::Assign { rvalue: Rvalue::Call { callee, args }, .. } => (callee, args),
            _ => continue,
        };
        if refcount_changing(callee.as_str()) {
            for arg in args {
                if let Operand::Var(name) = arg {
                    slice.insert(*name);
                }
            }
            dep_blocks.push(id.block);
        }
    }
    // Transitive closure over control dependence.
    let mut controlling: HashSet<rid_ir::BlockId> = HashSet::new();
    while let Some(b) = dep_blocks.pop() {
        for &branch in &deps[b.index()] {
            if controlling.insert(branch) {
                dep_blocks.push(branch);
            }
        }
    }
    for branch in controlling {
        if let Terminator::Branch { cond, .. } = func.block(branch).term {
            slice.insert(*cond);
        }
    }

    data_closure(func, slice)
}

fn data_closure(func: &Function, mut slice: HashSet<Sym>) -> HashSet<Sym> {
    loop {
        let mut changed = false;
        for (_, inst) in func.insts() {
            let Some(dst) = inst.def_sym() else { continue };
            if !slice.contains(&dst) {
                continue;
            }
            for used in inst.used_var_syms() {
                if slice.insert(used) {
                    changed = true;
                }
            }
        }
        if !changed {
            return slice;
        }
    }
}

fn callees_with_results_in(
    func: &Function,
    slice: &HashSet<Sym>,
    refcount_changing: &dyn Fn(&str) -> bool,
) -> HashSet<Sym> {
    let mut out = HashSet::new();
    for (_, inst) in func.insts() {
        if let Inst::Assign { dst, rvalue: Rvalue::Call { callee, .. } } = inst {
            if slice.contains(dst) && !refcount_changing(callee.as_str()) {
                out.insert(*callee);
            }
        }
    }
    out
}

/// The callees of `func` whose call *results* are inside the slice — the
/// category-2 candidates of §5.2.
#[must_use]
pub fn sliced_callees(
    func: &Function,
    refcount_changing: &dyn Fn(&str) -> bool,
) -> HashSet<Sym> {
    let slice = slice_variables(func, refcount_changing);
    callees_with_results_in(func, &slice, refcount_changing)
}

/// [`sliced_callees`] computed with the precise control-dependence slice.
#[must_use]
pub fn sliced_callees_precise(
    func: &Function,
    refcount_changing: &dyn Fn(&str) -> bool,
) -> HashSet<Sym> {
    let slice = slice_variables_precise(func, refcount_changing);
    callees_with_results_in(func, &slice, refcount_changing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_frontend::parse_module;

    fn func(src: &str, name: &str) -> Function {
        parse_module(src).unwrap().function(name).unwrap().clone()
    }

    fn is_api(name: &str) -> bool {
        name.starts_with("pm_runtime")
    }

    #[test]
    fn return_value_seeds_slice() {
        let f = func("module m; fn f() { let a = g(); return a; }", "f");
        let slice = slice_variables(&f, &is_api);
        assert!(slice.contains(&Sym::new("a")));
        let callees = sliced_callees(&f, &is_api);
        assert!(callees.contains(&Sym::new("g")));
    }

    #[test]
    fn refcount_args_seed_slice() {
        let f = func(
            "module m; fn f() { let d = lookup(); pm_runtime_get(d); return; }",
            "f",
        );
        let slice = slice_variables(&f, &is_api);
        assert!(slice.contains(&Sym::new("d")));
        assert!(sliced_callees(&f, &is_api).contains(&Sym::new("lookup")));
    }

    #[test]
    fn branch_conditions_included_when_refcounts_present() {
        let f = func(
            r#"module m;
            fn f(dev) {
                let st = check();
                if (st) { pm_runtime_get(dev); }
                return;
            }"#,
            "f",
        );
        // `check` feeds the branch controlling the get → category-2.
        assert!(sliced_callees(&f, &is_api).contains(&Sym::new("check")));
    }

    #[test]
    fn branch_conditions_excluded_without_refcounts() {
        let f = func(
            r#"module m;
            fn f() {
                let st = check();
                if (st) { log(); }
                return;
            }"#,
            "f",
        );
        // No refcount calls and no returned value: check is irrelevant.
        assert!(!sliced_callees(&f, &is_api).contains(&Sym::new("check")));
    }

    #[test]
    fn unrelated_calls_not_in_slice() {
        let f = func(
            r#"module m;
            fn f(dev) {
                let x = irrelevant();
                pm_runtime_get(dev);
                return 0;
            }"#,
            "f",
        );
        assert!(!sliced_callees(&f, &is_api).contains(&Sym::new("irrelevant")));
    }

    #[test]
    fn transitive_data_dependence() {
        let f = func(
            "module m; fn f() { let a = source(); let b = a.fieldx; return b; }",
            "f",
        );
        let slice = slice_variables(&f, &is_api);
        assert!(slice.contains(&Sym::new("a")) && slice.contains(&Sym::new("b")));
        assert!(sliced_callees(&f, &is_api).contains(&Sym::new("source")));
    }

    #[test]
    fn precise_slice_is_subset_of_approximate() {
        let f = func(
            r#"module m;
            fn f(dev) {
                let unrelated = probe_fan(dev);
                if (unrelated < 0) { log_it(dev); }
                let st = probe_pm(dev);
                if (st < 0) { return -1; }
                pm_runtime_get(dev);
                pm_runtime_put(dev);
                return 0;
            }"#,
            "f",
        );
        let approx = slice_variables(&f, &is_api);
        let precise = slice_variables_precise(&f, &is_api);
        assert!(precise.is_subset(&approx), "{precise:?} ⊄ {approx:?}");
        // The approximation pulls in the fan probe (its branch exists);
        // the precise slice does not (that branch controls no pm call).
        assert!(approx.contains(&Sym::new("unrelated")));
        assert!(!precise.contains(&Sym::new("unrelated")));
        let approx_callees = sliced_callees(&f, &is_api);
        let precise_callees = sliced_callees_precise(&f, &is_api);
        assert!(approx_callees.contains(&Sym::new("probe_fan")));
        assert!(!precise_callees.contains(&Sym::new("probe_fan")));
        assert!(precise_callees.contains(&Sym::new("probe_pm")));
    }

    #[test]
    fn precise_slice_keeps_controlling_branches() {
        let f = func(
            r#"module m;
            fn f(dev) {
                let st = check(dev);
                if (st) { pm_runtime_get(dev); }
                return;
            }"#,
            "f",
        );
        let precise = slice_variables_precise(&f, &is_api);
        assert!(precise.contains(&Sym::new("st")), "{precise:?}");
        assert!(sliced_callees_precise(&f, &is_api).contains(&Sym::new("check")));
    }

    #[test]
    fn refcount_changing_callees_are_not_category2() {
        let f = func(
            "module m; fn f(dev) { let r = pm_runtime_get_sync(dev); return r; }",
            "f",
        );
        // pm_runtime_get_sync is category 1, not 2, even though its result
        // is returned.
        assert!(sliced_callees(&f, &is_api).is_empty());
    }
}
