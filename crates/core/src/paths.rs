//! Path enumeration (step I of Figure 4).
//!
//! All entry-to-exit paths of a function are enumerated structurally, with
//! loops unrolled at most once (each block may appear at most
//! [`PathLimits::max_block_visits`] times on a path) and a global cap on
//! the number of paths. Feasibility is decided later by the symbolic
//! executor; enumeration is purely structural.

use rid_ir::{BlockId, Function, Terminator};
use serde::{Deserialize, Serialize};

use crate::budget::BudgetMeter;

/// Limits controlling path enumeration and symbolic execution (§5.2; the
/// paper's evaluation uses 100 paths per function and 10 subcases per
/// path, §6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathLimits {
    /// Maximum number of entry-to-exit paths enumerated per function.
    pub max_paths: usize,
    /// Maximum times a block may occur on one path (2 = "loops unrolled at
    /// most once").
    pub max_block_visits: u32,
    /// Maximum symbolic states forked from one path by callee-summary
    /// entries ("subcases in a path").
    pub max_subcases: usize,
    /// Maximum entries kept in one function summary before falling back to
    /// the default entry.
    pub max_entries: usize,
}

impl Default for PathLimits {
    fn default() -> Self {
        PathLimits { max_paths: 100, max_block_visits: 2, max_subcases: 10, max_entries: 64 }
    }
}

/// One structural path: the sequence of blocks from entry to a `return`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// Blocks in execution order; the last block ends in
    /// [`Terminator::Return`].
    pub blocks: Vec<BlockId>,
}

/// The outcome of path enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSet {
    /// The enumerated paths.
    pub paths: Vec<Path>,
    /// Whether enumeration stopped early because [`PathLimits::max_paths`]
    /// was reached (the function then gets a default summary entry, §5.2).
    pub truncated: bool,
    /// Whether enumeration stopped early because the budget deadline
    /// passed (implies `truncated`).
    pub deadline_hit: bool,
}

/// One node of a [`PathTree`]: a block, its children in first-seen
/// (= enumeration) order, and the indices of the paths ending here.
#[derive(Clone, Debug)]
pub(crate) struct TreeNode {
    /// The basic block this node executes.
    pub block: BlockId,
    /// Child nodes, in the order the enumerated paths first visited them.
    pub children: Vec<u32>,
    /// Indices (into the original path list) of paths ending at this node,
    /// in enumeration order. Distinct paths never collide here — a path
    /// ends exactly where its last block's `Return` terminator is — but
    /// *duplicate* paths (a branch whose arms coincide) share a leaf.
    pub path_indices: Vec<u32>,
}

/// A shared-prefix tree (trie) over the block sequences of a [`PathSet`].
///
/// Paths that share a prefix share the corresponding nodes, so a tree walk
/// executes each shared prefix once instead of once per path. Because the
/// DFS enumeration emits paths in depth-first order and children are kept
/// in first-seen order, a depth-first walk of this tree visits leaves in
/// exactly the original path order — the property that keeps tree-mode
/// summary entries byte-identical to per-path execution.
#[derive(Clone, Debug)]
pub struct PathTree {
    pub(crate) nodes: Vec<TreeNode>,
    /// Root nodes in first-seen order (a single entry block in practice;
    /// kept general so the walk never depends on that invariant).
    pub(crate) roots: Vec<u32>,
    /// Total blocks across all paths (what per-path execution would have
    /// executed); the tree's node count is what tree execution executes.
    pub total_path_blocks: usize,
}

impl PathTree {
    /// Builds the trie from enumerated paths (insertion order preserved).
    #[must_use]
    pub fn from_paths(paths: &[Path]) -> PathTree {
        let mut tree = PathTree { nodes: Vec::new(), roots: Vec::new(), total_path_blocks: 0 };
        for (index, path) in paths.iter().enumerate() {
            tree.total_path_blocks += path.blocks.len();
            let Some((&first, rest)) = path.blocks.split_first() else { continue };
            let mut at = tree.child_of(None, first);
            for &block in rest {
                at = tree.child_of(Some(at), block);
            }
            tree.nodes[at as usize].path_indices.push(index as u32);
        }
        tree
    }

    /// Number of tree nodes (= blocks a tree walk executes).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether a depth-first walk emits leaf path indices in exactly the
    /// enumeration order `0, 1, 2, …`. This holds for every CFG without
    /// *duplicate* paths; a branch whose arms coincide replays a whole
    /// subtree, so its leaves carry interleaved index lists. Tree
    /// execution streams entries (applying the entry cap early) when this
    /// holds and buffers + reorders by path index otherwise.
    #[must_use]
    pub fn leaves_in_path_order(&self) -> bool {
        let mut next = 0u32;
        let mut stack: Vec<u32> = self.roots.iter().rev().copied().collect();
        while let Some(at) = stack.pop() {
            let node = &self.nodes[at as usize];
            for &pi in &node.path_indices {
                if pi != next {
                    return false;
                }
                next += 1;
            }
            stack.extend(node.children.iter().rev());
        }
        true
    }

    /// The existing child of `parent` (or root) for `block`, creating it
    /// if absent. Linear scan: real CFG nodes have at most a handful of
    /// successors.
    fn child_of(&mut self, parent: Option<u32>, block: BlockId) -> u32 {
        let siblings = match parent {
            Some(p) => &self.nodes[p as usize].children,
            None => &self.roots,
        };
        if let Some(&existing) =
            siblings.iter().find(|&&c| self.nodes[c as usize].block == block)
        {
            return existing;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(TreeNode { block, children: Vec::new(), path_indices: Vec::new() });
        match parent {
            Some(p) => self.nodes[p as usize].children.push(id),
            None => self.roots.push(id),
        }
        id
    }
}

/// Enumerates all entry-to-exit paths of `func` under `limits`.
#[must_use]
pub fn enumerate_paths(func: &Function, limits: &PathLimits) -> PathSet {
    enumerate_paths_metered(func, limits, &BudgetMeter::unlimited())
}

/// Like [`enumerate_paths`], but polls `meter` between DFS steps; when a
/// deadline passes the enumeration stops with what it has (the function
/// then degrades like a path-cap hit).
#[must_use]
pub fn enumerate_paths_metered(
    func: &Function,
    limits: &PathLimits,
    meter: &BudgetMeter,
) -> PathSet {
    let n = func.blocks().len();
    let mut paths = Vec::new();
    let mut truncated = false;
    let mut deadline_hit = false;

    // Iterative DFS; each stack frame is (path-so-far, visit counts).
    struct Frame {
        path: Vec<BlockId>,
        visits: Vec<u32>,
    }
    let mut initial_visits = vec![0u32; n];
    initial_visits[0] = 1;
    let mut stack = vec![Frame { path: vec![BlockId::ENTRY], visits: initial_visits }];

    while let Some(frame) = stack.pop() {
        if paths.len() >= limits.max_paths {
            truncated = true;
            break;
        }
        if meter.expired() {
            truncated = true;
            deadline_hit = true;
            break;
        }
        // Frames always hold at least the entry block; an empty frame
        // would be a construction bug, and skipping it beats poisoning
        // the whole analysis with a panic.
        let Some(&last) = frame.path.last() else { continue };
        match &func.block(last).term {
            Terminator::Return(_) => {
                paths.push(Path { blocks: frame.path });
            }
            Terminator::Unreachable => {
                // The path dies without reaching an exit; discard it.
            }
            term => {
                let succs = term.successors();
                // Push in reverse so the "then" branch is explored first.
                for succ in succs.into_iter().rev() {
                    if frame.visits[succ.index()] >= limits.max_block_visits {
                        // Loop unrolling limit reached; this continuation
                        // is abandoned, which can hide loop-dependent bugs
                        // (limitation 2 in §5.4).
                        continue;
                    }
                    let mut path = frame.path.clone();
                    path.push(succ);
                    let mut visits = frame.visits.clone();
                    visits[succ.index()] += 1;
                    stack.push(Frame { path, visits });
                }
            }
        }
    }
    if !stack.is_empty() {
        truncated = true;
    }
    PathSet { paths, truncated, deadline_hit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_ir::{FunctionBuilder, Operand, Pred, Rvalue};

    fn limits() -> PathLimits {
        PathLimits::default()
    }

    #[test]
    fn straight_line_has_one_path() {
        let mut b = FunctionBuilder::new("f", Vec::<String>::new());
        b.ret(0);
        let f = b.finish().unwrap();
        let set = enumerate_paths(&f, &limits());
        assert_eq!(set.paths.len(), 1);
        assert!(!set.truncated);
        assert_eq!(set.paths[0].blocks, vec![BlockId(0)]);
    }

    fn diamond() -> rid_ir::Function {
        let mut b = FunctionBuilder::new("f", ["x"]);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.assign("c", Rvalue::cmp(Pred::Gt, Operand::var("x"), Operand::Int(0)));
        b.branch("c", t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(0);
        b.finish().unwrap()
    }

    #[test]
    fn diamond_has_two_paths_then_first() {
        let set = enumerate_paths(&diamond(), &limits());
        assert_eq!(set.paths.len(), 2);
        // Then-branch explored first.
        assert_eq!(set.paths[0].blocks, vec![BlockId(0), BlockId(1), BlockId(3)]);
        assert_eq!(set.paths[1].blocks, vec![BlockId(0), BlockId(2), BlockId(3)]);
    }

    fn looped() -> rid_ir::Function {
        let mut b = FunctionBuilder::new("f", ["n"]);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to(head);
        b.assign("c", Rvalue::cmp(Pred::Gt, Operand::var("n"), Operand::Int(0)));
        b.branch("c", body, exit);
        b.switch_to(body);
        b.call("work", []);
        b.jump(head);
        b.switch_to(exit);
        b.ret(0);
        b.finish().unwrap()
    }

    #[test]
    fn loops_unrolled_once() {
        let set = enumerate_paths(&looped(), &limits());
        // Zero-iteration and one-iteration paths only.
        assert_eq!(set.paths.len(), 2);
        let lens: Vec<usize> = set.paths.iter().map(|p| p.blocks.len()).collect();
        assert!(lens.contains(&3)); // entry, head, exit
        assert!(lens.contains(&5)); // entry, head, body, head, exit
        assert!(!set.truncated);
    }

    #[test]
    fn path_cap_truncates() {
        // A chain of k diamonds has 2^k paths; cap at 100.
        let mut b = FunctionBuilder::new("f", ["x"]);
        let mut cur_join = None;
        for i in 0..10 {
            if let Some(j) = cur_join {
                b.switch_to(j);
            }
            let t = b.new_block();
            let e = b.new_block();
            let j = b.new_block();
            b.assign(
                format!("c{i}"),
                Rvalue::cmp(Pred::Gt, Operand::var("x"), Operand::Int(i)),
            );
            b.branch(format!("c{i}"), t, e);
            b.switch_to(t);
            b.jump(j);
            b.switch_to(e);
            b.jump(j);
            cur_join = Some(j);
        }
        b.switch_to(cur_join.unwrap());
        b.ret(0);
        let f = b.finish().unwrap();
        let set = enumerate_paths(&f, &limits());
        assert_eq!(set.paths.len(), 100);
        assert!(set.truncated);
    }

    #[test]
    fn unreachable_terminator_discards_path() {
        let mut b = FunctionBuilder::new("f", ["x"]);
        let t = b.new_block();
        let e = b.new_block();
        b.assign("c", Rvalue::cmp(Pred::Eq, Operand::var("x"), Operand::Int(0)));
        b.branch("c", t, e);
        b.switch_to(t);
        b.unreachable();
        b.switch_to(e);
        b.ret(0);
        let f = b.finish().unwrap();
        let set = enumerate_paths(&f, &limits());
        assert_eq!(set.paths.len(), 1);
    }

    #[test]
    fn expired_meter_stops_enumeration_with_deadline_flag() {
        use crate::budget::Budget;
        use std::time::{Duration, Instant};
        let f = diamond();
        let budget =
            Budget { global_deadline: Some(Duration::ZERO), ..Budget::unlimited() };
        let meter =
            BudgetMeter::start(&budget, Some(Instant::now() - Duration::from_secs(1)));
        let set = enumerate_paths_metered(&f, &limits(), &meter);
        assert!(set.truncated);
        assert!(set.deadline_hit);
        assert!(set.paths.len() < 2, "enumeration stopped early: {:?}", set.paths);
    }

    /// Depth-first leaf order of the tree, as path indices.
    fn dfs_leaf_order(tree: &PathTree) -> Vec<u32> {
        let mut order = Vec::new();
        let mut stack: Vec<u32> = tree.roots.iter().rev().copied().collect();
        while let Some(at) = stack.pop() {
            let node = &tree.nodes[at as usize];
            order.extend(node.path_indices.iter().copied());
            stack.extend(node.children.iter().rev().copied());
        }
        order
    }

    #[test]
    fn tree_shares_prefixes_and_preserves_leaf_order() {
        let set = enumerate_paths(&diamond(), &limits());
        let tree = PathTree::from_paths(&set.paths);
        // entry + then + else + join×2 = 5 nodes vs 6 path blocks.
        assert_eq!(tree.total_path_blocks, 6);
        assert_eq!(tree.node_count(), 5);
        assert_eq!(dfs_leaf_order(&tree), vec![0, 1]);
    }

    #[test]
    fn tree_leaf_order_matches_enumeration_on_diamond_chains() {
        // 2^10 paths capped at 100: leaf order must be 0..100.
        let mut b = FunctionBuilder::new("f", ["x"]);
        let mut cur_join = None;
        for i in 0..10 {
            if let Some(j) = cur_join {
                b.switch_to(j);
            }
            let t = b.new_block();
            let e = b.new_block();
            let j = b.new_block();
            b.assign(
                format!("c{i}"),
                Rvalue::cmp(Pred::Gt, Operand::var("x"), Operand::Int(i)),
            );
            b.branch(format!("c{i}"), t, e);
            b.switch_to(t);
            b.jump(j);
            b.switch_to(e);
            b.jump(j);
            cur_join = Some(j);
        }
        b.switch_to(cur_join.unwrap());
        b.ret(0);
        let f = b.finish().unwrap();
        let set = enumerate_paths(&f, &limits());
        let tree = PathTree::from_paths(&set.paths);
        assert_eq!(dfs_leaf_order(&tree), (0..100).collect::<Vec<u32>>());
        assert!(
            tree.node_count() * 2 < tree.total_path_blocks,
            "deep diamonds must share prefixes: {} nodes vs {} path blocks",
            tree.node_count(),
            tree.total_path_blocks
        );
    }

    #[test]
    fn duplicate_paths_share_a_leaf() {
        // A branch with coinciding arms enumerates the same block sequence
        // twice; both indices land on one leaf, in order.
        let mut b = FunctionBuilder::new("f", ["x"]);
        let join = b.new_block();
        b.assign("c", Rvalue::cmp(Pred::Gt, Operand::var("x"), Operand::Int(0)));
        b.branch("c", join, join);
        b.switch_to(join);
        b.ret(0);
        let f = b.finish().unwrap();
        let set = enumerate_paths(&f, &limits());
        assert_eq!(set.paths.len(), 2);
        let tree = PathTree::from_paths(&set.paths);
        let leaf = tree.nodes.iter().find(|n| !n.path_indices.is_empty()).unwrap();
        assert_eq!(leaf.path_indices, vec![0, 1]);
    }

    #[test]
    fn empty_path_set_builds_empty_tree() {
        let tree = PathTree::from_paths(&[]);
        assert_eq!(tree.node_count(), 0);
        assert!(tree.roots.is_empty());
    }

    #[test]
    fn custom_visit_budget_allows_deeper_unrolling() {
        let f = looped();
        let mut lim = limits();
        lim.max_block_visits = 3;
        let set = enumerate_paths(&f, &lim);
        assert_eq!(set.paths.len(), 3); // 0, 1 and 2 iterations
    }
}
