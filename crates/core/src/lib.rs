//! # rid-core — inconsistent path pair checking
//!
//! This crate implements the RID analysis from *RID: Finding Reference
//! Count Bugs with Inconsistent Path Pair Checking* (ASPLOS 2016):
//!
//! * **function summaries** ([`Summary`], §4.3) record refcount changes and
//!   return values under constraints;
//! * **predefined summaries** ([`apis`], §5.1) encode refcount API
//!   specifications — the only input the analysis needs;
//! * **path enumeration** ([`paths`], loops unrolled once, §4.2);
//! * **symbolic execution** ([`exec`], Figure 6 / Algorithm 1) calculates
//!   one summary entry per feasible path subcase, then removes conditions
//!   on local variables by exact projection;
//! * **IPP checking** ([`ipp`], §4.5) reports any two entries that are
//!   indistinguishable from outside (same arguments, same return value)
//!   yet change a refcount differently;
//! * **selective analysis** ([`classify`], §5.2) concentrates work on the
//!   small portion of a kernel that can affect refcounts;
//! * the **driver** ([`driver`]) runs everything bottom-up over the call
//!   graph, optionally in parallel, and [`persist`] implements the
//!   separate-compilation mode of §5.3;
//! * two extensions from the paper's future-work list are included and
//!   off by default: the **callback contract** ([`callbacks`]) catches
//!   the Figure 10 class through function-pointer registrations, and
//!   **incremental recheck** ([`incremental`]) re-analyzes only the
//!   callers of a fixed function (§5.4, limitation 4).
//!
//! ## Quickstart
//!
//! ```
//! use rid_core::{analyze_sources, apis::linux_dpm_apis, AnalysisOptions};
//!
//! // The Figure 8 bug: pm_runtime_get_sync increments the PM count even
//! // when it fails, but the early-error return skips the put.
//! let src = r#"module radeon;
//!     fn radeon_crtc_set_config(dev, set) {
//!         let ret = pm_runtime_get_sync(dev);
//!         if (ret < 0) { return ret; }
//!         ret = drm_crtc_helper_set_config(set);
//!         pm_runtime_put_autosuspend(dev);
//!         return ret;
//!     }"#;
//! let result = analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default())?;
//! assert_eq!(result.reports.len(), 1);
//! # Ok::<(), rid_frontend::FrontendError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apis;
pub mod budget;
pub mod cache;
pub mod callbacks;
pub mod callgraph;
pub mod checks;
pub mod classify;
pub mod driver;
pub mod exec;
pub mod fault;
pub mod incremental;
pub mod ipp;
pub mod mining;
pub mod obs;
pub mod paths;
pub mod persist;
pub mod refute;
pub mod report;
pub mod shard;
pub mod triage;
pub mod slice;
pub mod store;
pub mod summary;

pub use budget::{
    degradation_summary_line, Budget, BudgetMeter, Degradation, DegradeReason, FunctionCost,
};
pub use cache::{CacheEntry, SummaryCache, CACHE_SCHEMA};
pub use callgraph::CallGraph;
pub use classify::{Category, CategoryCounts, Classification};
pub use driver::{
    analyze_program, analyze_program_cached, analyze_program_with_faults, analyze_sources,
    AnalysisOptions, AnalysisResult, AnalysisStats, HistogramSnapshot, WorkerProfile,
    AUTO_STEAL_CAP,
};
pub use exec::{
    summarize_paths, summarize_paths_metered, summarize_paths_mode, ExecMode, PathEntry,
    SummarizeOutcome,
};
pub use fault::FaultPlan;
pub use ipp::{check_ipps, IppOutcome, IppReport, ReportProvenance};
pub use obs::{
    degrade_census, next_trace_id, parse_trace_jsonl, record_trace, registry_from_result,
    registry_from_stats,
};
pub use paths::{enumerate_paths, enumerate_paths_metered, Path, PathLimits, PathSet, PathTree};
pub use refute::{refute_report, RefuteVerdict, DEFAULT_REFUTE_FUEL};
pub use report::{
    classify_report, render_explanation, render_explanations, render_report, render_reports,
    BugKind,
};
pub use shard::{
    analyze_processes, analyze_processes_traced, maybe_run_worker, ShardTrace, StitchedTrace,
    TRACE_FILE_ENV, TRACE_ID_ENV, WORKER_ARG,
};
pub use store::SummaryStore;
pub use summary::{Summary, SummaryDb, SummaryEntry};
pub use triage::{classify_reports, report_hash, DiffClass, ReportDiff, Ridignore};
