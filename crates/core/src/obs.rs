//! The metrics facade between rid-core and [`rid_obs`].
//!
//! `AnalysisStats` stays the producer-owned, serde-friendly struct the
//! rest of the workspace already consumes; this module *snapshots* it
//! (plus the degradation census and, when available, a drained trace)
//! into a passive [`rid_obs::Registry`] under the stable dot-separated
//! vocabulary. The hot path never touches the registry — it is built on
//! demand by the `--metrics` CLI flag, the `profile` bench bin, and CI.

use std::collections::BTreeMap;

use rid_obs::{Registry, SpanKind, Trace};

use crate::budget::Degradation;
use crate::driver::{AnalysisResult, AnalysisStats};

/// Snapshots run statistics into a registry under the stable metric
/// names (`funcs.*`, `paths.*`, `sat.*`, `cache.*`, `exec.*`, `sched.*`,
/// `phase.*`).
#[must_use]
pub fn registry_from_stats(stats: &AnalysisStats) -> Registry {
    let mut r = Registry::new();
    r.count("funcs.total", stats.functions_total as u64);
    r.count("funcs.analyzed", stats.functions_analyzed as u64);
    r.count("funcs.partial", stats.functions_partial as u64);
    r.count("paths.enumerated", stats.paths_enumerated as u64);
    r.count("paths.states_explored", stats.states_explored as u64);
    r.count("sat.queries", stats.sat_queries as u64);
    r.count("sat.memo_hits", stats.sat_memo_hits as u64);
    r.count("sat.sat", stats.sat_sat as u64);
    r.count("sat.unsat", stats.sat_unsat as u64);
    r.count("sat.snapshots", stats.solver_snapshots as u64);
    r.gauge("sat.snapshot_depth_max", stats.snapshot_depth_max as i64);
    r.count("exec.blocks_executed", stats.blocks_executed as u64);
    r.count("exec.blocks_saved", stats.blocks_saved as u64);
    r.count("exec.tree", stats.exec_tree as u64);
    r.count("exec.per_path", stats.exec_per_path as u64);
    r.count("cache.hits", stats.cache_hits as u64);
    r.count("cache.misses", stats.cache_misses as u64);
    r.count("cache.invalidated", stats.cache_invalidated as u64);
    r.count("sched.steals", stats.steals as u64);
    r.gauge("sched.queue_depth_max", stats.queue_depth_max as i64);
    // Per-worker scheduler profiles, both per worker (`sched.w<i>.*`) and
    // folded across workers (`sched.steal_batch` etc. — what the bench
    // records and the v7 validator checks for presence).
    for p in &stats.worker_profiles {
        let w = p.worker;
        r.count(&format!("sched.w{w}.comps"), p.comps);
        r.count(&format!("sched.w{w}.steals"), p.steals);
        r.count(&format!("sched.w{w}.scan_misses"), p.scan_misses);
        r.insert_histogram(&format!("sched.w{w}.steal_batch"), &p.steal_batch.to_histogram());
        r.insert_histogram(&format!("sched.w{w}.steal_scan"), &p.steal_scan.to_histogram());
        r.insert_histogram(&format!("sched.w{w}.idle_wait_ns"), &p.idle_wait_ns.to_histogram());
        r.insert_histogram("sched.steal_batch", &p.steal_batch.to_histogram());
        r.insert_histogram("sched.steal_scan", &p.steal_scan.to_histogram());
        r.insert_histogram("sched.idle_wait_ns", &p.idle_wait_ns.to_histogram());
    }
    r.gauge("phase.classify.wall_us", stats.classify_time.as_micros() as i64);
    r.gauge("phase.analyze.wall_us", stats.analyze_time.as_micros() as i64);
    r
}

/// Folds the degradation census into `registry` as `degrade.<reason>`
/// counters (one per [`crate::budget::DegradeReason`] label present).
pub fn record_degradations<'a>(
    registry: &mut Registry,
    degraded: impl IntoIterator<Item = &'a Degradation>,
) {
    for d in degraded {
        registry.count(&format!("degrade.{}", d.reason.label()), 1);
    }
}

/// Folds a drained trace into `registry`: per-kind span counts
/// (`trace.<kind>.count`), per-kind duration histograms
/// (`trace.<kind>.dur_ns`), and the drop counter (`trace.dropped`).
pub fn record_trace(registry: &mut Registry, trace: &Trace) {
    for e in &trace.events {
        registry.count(&format!("trace.{}.count", e.kind.label()), 1);
        if !e.instant {
            registry.observe(&format!("trace.{}.dur_ns", e.kind.label()), e.dur_ns);
        }
    }
    if trace.dropped > 0 {
        registry.count("trace.dropped", trace.dropped);
    }
}

/// One-call convenience: stats + degradations of a finished run.
#[must_use]
pub fn registry_from_result(result: &AnalysisResult) -> Registry {
    let mut r = registry_from_stats(&result.stats);
    record_degradations(&mut r, result.degraded.values());
    r
}

/// Parses the `name` of a `Degrade` trace event back into its
/// `(reason-label, function)` parts (the inverse of the
/// `<reason>:<function>` naming used when the event is emitted). Returns
/// `None` for names that are not of that shape.
#[must_use]
pub fn split_degrade_name(name: &str) -> Option<(&str, &str)> {
    name.split_once(':')
}

/// Census of `Degrade` events in a trace, keyed by function name →
/// reason label. Each function appears once (the driver emits exactly
/// one event per degradation record), so this is directly comparable to
/// [`AnalysisResult::degraded`].
#[must_use]
pub fn degrade_census(trace: &Trace) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for e in &trace.events {
        if e.kind == SpanKind::Degrade {
            if let Some((reason, func)) = split_degrade_name(&e.name) {
                out.insert(func.to_owned(), reason.to_owned());
            }
        }
    }
    out
}

/// A process-unique trace id: the coordinator's OS pid in the high 32
/// bits, a per-process counter in the low. Ties the coordinator and
/// every `__rid-shard-worker` child of one run into one timeline (and
/// one merged Chrome trace) without any shared clock or filesystem
/// coordination.
#[must_use]
pub fn next_trace_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    (u64::from(std::process::id()) << 32) | NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Parses trace JSONL (the [`Trace::to_jsonl`] format) back into
/// events — the reader half of cross-process trace stitching: shard
/// workers flush their rings to per-shard `.trace.jsonl` files and the
/// coordinator reconstructs them with this. Unknown or malformed lines
/// (a header, a newer schema's span kind) are skipped, not errors, so
/// a coordinator can read artifacts written by a newer worker.
#[must_use]
pub fn parse_trace_jsonl(text: &str) -> Vec<rid_obs::TraceEvent> {
    let mut events = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<serde_json::Value>(line) else { continue };
        let Some(kind) = v["kind"].as_str().and_then(rid_obs::SpanKind::from_label) else {
            continue;
        };
        events.push(rid_obs::TraceEvent {
            kind,
            name: v["name"].as_str().unwrap_or_default().to_owned(),
            thread: v["thread"].as_u64().unwrap_or(0) as usize,
            seq: v["seq"].as_u64().unwrap_or(0),
            start_ns: v["start_ns"].as_u64().unwrap_or(0),
            dur_ns: v["dur_ns"].as_u64().unwrap_or(0),
            instant: v["ph"].as_str() == Some("instant"),
            value: v["value"].as_u64().unwrap_or(0),
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{DegradeReason, FunctionCost};

    #[test]
    fn stats_snapshot_uses_stable_names() {
        let stats = AnalysisStats {
            functions_total: 10,
            functions_analyzed: 4,
            sat_queries: 100,
            sat_sat: 70,
            sat_unsat: 30,
            cache_hits: 2,
            steals: 3,
            queue_depth_max: 5,
            ..AnalysisStats::default()
        };
        let r = registry_from_stats(&stats);
        assert_eq!(r.counter("funcs.total"), 10);
        assert_eq!(r.counter("sat.queries"), 100);
        assert_eq!(r.counter("sat.sat") + r.counter("sat.unsat"), 100);
        assert_eq!(r.counter("sched.steals"), 3);
        assert_eq!(r.gauge_value("sched.queue_depth_max"), Some(5));
        let json = r.to_json();
        assert!(json.contains("\"cache.hits\":2"));
    }

    #[test]
    fn degradations_count_by_reason() {
        let mut r = Registry::new();
        let d = |reason| Degradation { reason, cost: FunctionCost::default() };
        record_degradations(
            &mut r,
            [&d(DegradeReason::Deadline), &d(DegradeReason::Deadline), &d(DegradeReason::Panic)],
        );
        assert_eq!(r.counter("degrade.deadline"), 2);
        assert_eq!(r.counter("degrade.panic"), 1);
    }

    #[test]
    fn degrade_name_round_trips() {
        assert_eq!(split_degrade_name("deadline:foo"), Some(("deadline", "foo")));
        assert_eq!(split_degrade_name("noseparator"), None);
    }
}
