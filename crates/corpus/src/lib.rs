//! # rid-corpus — synthetic evaluation corpora with ground truth
//!
//! The RID paper evaluates against the Linux 3.17 kernel and three
//! Python/C extension modules — artifacts we cannot ship. This crate
//! substitutes deterministic, seeded *generators* that reproduce the
//! idioms the paper's evaluation depends on, each instance labelled with
//! ground truth so detection can be *measured* rather than hand-confirmed:
//!
//! * [`kernel`] generates a synthetic Linux-like kernel: subsystems with
//!   DPM wrapper layers (the `usb_autopm_get_interface` pattern of
//!   Figure 9), drivers whose error handling is seeded with the paper's
//!   bug classes (Figures 8–10), false-positive-inducing constructs
//!   (§6.4), and a large mass of refcount-irrelevant functions shaping the
//!   Table 1 census;
//! * [`pyc`] generates Python/C-extension-like modules with
//!   CPython-refcount bug mixes calibrated to Table 2 (bugs both tools
//!   find, bugs only RID's SSA/path-sensitivity finds, and bugs only an
//!   escape-rule checker like Cpychecker finds).
//!
//! Everything is emitted as RIL source text (see `rid-frontend`), so the
//! corpus exercises the full pipeline end-to-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod pyc;

pub use kernel::{
    GetCallSite, KernelConfig, KernelCorpus, SeededBug, SeededBugRecord, SPURIOUS_DISEQS,
};
pub use pyc::{PycBugClass, PycConfig, PycCorpus, PycProgram};
