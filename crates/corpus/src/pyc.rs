//! Python/C extension generator for the Table 2 comparison (§6.6).
//!
//! The paper compares RID against Cpychecker on three Python/C programs
//! (krbV, ldap, pyaudio). This generator emits RIL modules using the
//! CPython refcount API (see `rid_core::apis::python_c_apis`) with three
//! calibrated bug classes:
//!
//! * **Common** — a missing `Py_DECREF` on an error path in
//!   single-assignment code: RID pairs the two error paths; an
//!   escape-rule checker sees the unbalanced count. Both tools find it.
//! * **RidOnly** — the same bug in a function that *reassigns* a status
//!   variable: Cpychecker's non-SSA analysis bails out (the paper
//!   attributes RID's surplus exactly to SSA handling, §6.6), while RID's
//!   path summaries are unaffected.
//! * **BaselineOnly** — a single-path leak (an `Py_INCREF` never
//!   balanced): there is no path *pair*, so RID is silent by
//!   construction; the escape rule flags the imbalance. This is the small
//!   Cpychecker-specific column.
//!
//! Wrapper functions (`*_incref_*`) that intentionally change counts for
//! their callers are also emitted: the escape rule false-alarms on every
//! one of them (§2.1), RID on none.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Ground-truth class of a seeded Python/C bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PycBugClass {
    /// Found by both RID and the escape-rule baseline.
    Common,
    /// Found only by RID (the baseline bails on reassigned variables).
    RidOnly,
    /// Found only by the baseline (no inconsistent path pair exists).
    BaselineOnly,
}

/// Ground truth for one seeded bug.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PycBugRecord {
    /// Function containing the bug.
    pub function: String,
    /// Expected detection class.
    pub class: PycBugClass,
}

/// One generated Python/C-style program.
#[derive(Clone, Debug, Default)]
pub struct PycProgram {
    /// Program name (e.g. `krbv`).
    pub name: String,
    /// RIL module sources.
    pub sources: Vec<String>,
    /// Seeded bugs with classes.
    pub bugs: Vec<PycBugRecord>,
    /// Intentional refcount-changing wrappers: the escape-rule baseline
    /// false-alarms on these (§2.1); they are *not* bugs.
    pub wrappers: Vec<String>,
    /// Correct (bug-free) functions, for false-positive accounting.
    pub correct_functions: usize,
}

/// Per-program bug mix: `(name, common, rid_only, baseline_only)`.
pub type ProgramMix = (&'static str, usize, usize, usize);

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct PycConfig {
    /// RNG seed.
    pub seed: u64,
    /// Program mixes; defaults to the Table 2 shape:
    /// krbV (48, 86, 14), ldap (7, 13, 1), pyaudio (31, 15, 1).
    pub programs: Vec<ProgramMix>,
    /// Correct background functions per program.
    pub correct_per_program: usize,
    /// Wrapper functions per program.
    pub wrappers_per_program: usize,
}

impl Default for PycConfig {
    fn default() -> Self {
        PycConfig {
            seed: 2016,
            programs: vec![
                ("krbv", 48, 86, 14),
                ("ldap", 7, 13, 1),
                ("pyaudio", 31, 15, 1),
            ],
            correct_per_program: 40,
            wrappers_per_program: 6,
        }
    }
}

impl PycConfig {
    /// A small mix for tests.
    #[must_use]
    pub fn tiny(seed: u64) -> PycConfig {
        PycConfig {
            seed,
            programs: vec![("demo", 3, 2, 2)],
            correct_per_program: 5,
            wrappers_per_program: 2,
        }
    }
}

/// A generated corpus: one [`PycProgram`] per configured program.
#[derive(Clone, Debug, Default)]
pub struct PycCorpus {
    /// The generated programs.
    pub programs: Vec<PycProgram>,
}

const ALLOCATORS: &[&str] =
    &["PyList_New", "PyDict_New", "PyTuple_New", "PyInt_FromLong", "Py_BuildValue"];

fn allocator_call(rng: &mut StdRng) -> String {
    let api = ALLOCATORS[rng.gen_range(0..ALLOCATORS.len())];
    match api {
        "PyInt_FromLong" => format!("PyInt_FromLong({})", rng.gen_range(0..100)),
        "Py_BuildValue" => "Py_BuildValue(0)".to_owned(),
        other => format!("{other}(0)"),
    }
}

/// Generates the corpus. Deterministic in the seed.
#[must_use]
pub fn generate_pyc(config: &PycConfig) -> PycCorpus {
    let mut corpus = PycCorpus::default();
    let mut rng = StdRng::seed_from_u64(config.seed);
    for &(name, common, rid_only, baseline_only) in &config.programs {
        corpus.programs.push(generate_program(
            name,
            common,
            rid_only,
            baseline_only,
            config.correct_per_program,
            config.wrappers_per_program,
            &mut rng,
        ));
    }
    corpus
}

const FUNCS_PER_MODULE: usize = 40;

fn generate_program(
    name: &str,
    common: usize,
    rid_only: usize,
    baseline_only: usize,
    correct: usize,
    wrappers: usize,
    rng: &mut StdRng,
) -> PycProgram {
    let mut program = PycProgram { name: name.to_owned(), ..Default::default() };
    let mut bodies: Vec<String> = Vec::new();

    for i in 0..common {
        let func = format!("{name}_make_{i}");
        bodies.push(common_bug(name, &func, i, rng));
        program.bugs.push(PycBugRecord { function: func, class: PycBugClass::Common });
    }
    for i in 0..rid_only {
        let func = format!("{name}_build_{i}");
        bodies.push(rid_only_bug(name, &func, i, rng));
        program.bugs.push(PycBugRecord { function: func, class: PycBugClass::RidOnly });
    }
    for i in 0..baseline_only {
        let func = format!("{name}_cache_{i}");
        bodies.push(baseline_only_bug(name, &func, i));
        program
            .bugs
            .push(PycBugRecord { function: func, class: PycBugClass::BaselineOnly });
    }
    for i in 0..correct {
        bodies.push(correct_function(name, i, rng));
        program.correct_functions += 1;
    }
    for i in 0..wrappers {
        let func = format!("{name}_incref_{i}");
        bodies.push(format!(
            "fn {func}(obj) {{\n    Py_INCREF(obj);\n    return;\n}}\n"
        ));
        program.wrappers.push(func);
    }

    // Chunk into module files of FUNCS_PER_MODULE functions.
    for (chunk_idx, chunk) in bodies.chunks(FUNCS_PER_MODULE).enumerate() {
        let mut out = format!("module {name}_part{chunk_idx};\n");
        for body in chunk {
            out.push('\n');
            out.push_str(body);
        }
        program.sources.push(out);
    }
    program
}

/// Common class: error path misses the DECREF; all variables
/// single-assignment, so the escape-rule baseline analyzes it too. Two
/// shapes: a single allocation with an unhandled setup failure, and a
/// two-object variant where only the second object leaks.
fn common_bug(name: &str, func: &str, i: usize, rng: &mut StdRng) -> String {
    if rng.gen_bool(0.3) {
        let alloc_a = allocator_call(rng);
        let alloc_b = allocator_call(rng);
        return format!(
            r#"fn {func}(arg) {{
    let a = {alloc_a};
    if (a == null) {{ return null; }}
    let b = {alloc_b};
    if (b == null) {{
        Py_DECREF(a);
        return null;
    }}
    let rc = {name}_combine_{i}(a, b, arg);
    if (rc < 0) {{
        Py_DECREF(a);
        return null;
    }}
    Py_DECREF(b);
    return a;
}}
"#
        );
    }
    let alloc = allocator_call(rng);
    let err = -(rng.gen_range(1..6) as i64);
    format!(
        r#"fn {func}(arg) {{
    let obj = {alloc};
    if (obj == null) {{ return null; }}
    let rc = {name}_setup_{i}(obj, arg);
    if (rc < {err}) {{ return null; }}
    return obj;
}}
"#
    )
}

/// RidOnly class: same bug, but a variable is reassigned, which makes the
/// non-SSA baseline bail out (§6.6). Two shapes: a reassigned status
/// variable, and a reassigned object pointer losing the original
/// reference.
fn rid_only_bug(name: &str, func: &str, i: usize, rng: &mut StdRng) -> String {
    let alloc = allocator_call(rng);
    if rng.gen_bool(0.3) {
        return format!(
            r#"fn {func}(arg) {{
    let obj = {alloc};
    if (obj == null) {{ return -1; }}
    let tmp = {name}_transform_{i}(obj, arg);
    obj = tmp;
    if (obj == null) {{ return -1; }}
    {name}_finish_{i}(obj);
    return 0;
}}
"#
        );
    }
    format!(
        r#"fn {func}(arg) {{
    let st = 0;
    let obj = {alloc};
    if (obj == null) {{ return -1; }}
    st = {name}_fill_{i}(obj, arg);
    if (st < 0) {{ return -1; }}
    Py_DECREF(obj);
    return 0;
}}
"#
    )
}

/// BaselineOnly class: a single-path leak — no pair exists for RID, but
/// the net change violates the escape rule.
fn baseline_only_bug(name: &str, func: &str, i: usize) -> String {
    format!(
        r#"fn {func}(obj, table) {{
    Py_INCREF(obj);
    {name}_store_{i}(table, obj);
    return 0;
}}
"#
    )
}

/// Correct background function: error path balanced.
fn correct_function(name: &str, i: usize, rng: &mut StdRng) -> String {
    let alloc = allocator_call(rng);
    format!(
        r#"fn {name}_ok_{i}(arg) {{
    let obj = {alloc};
    if (obj == null) {{ return null; }}
    let rc = {name}_check_{i}(obj, arg);
    if (rc < 0) {{
        Py_DECREF(obj);
        return null;
    }}
    return obj;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_frontend::parse_program;

    #[test]
    fn deterministic_generation() {
        let a = generate_pyc(&PycConfig::tiny(3));
        let b = generate_pyc(&PycConfig::tiny(3));
        assert_eq!(a.programs[0].sources, b.programs[0].sources);
    }

    #[test]
    fn programs_parse() {
        let corpus = generate_pyc(&PycConfig::tiny(1));
        for program in &corpus.programs {
            let parsed = parse_program(program.sources.iter().map(String::as_str))
                .expect("generated program must parse");
            assert!(parsed.function_count() > 5);
        }
    }

    #[test]
    fn default_mix_matches_table2_totals() {
        let corpus = generate_pyc(&PycConfig::default());
        assert_eq!(corpus.programs.len(), 3);
        let count = |p: &PycProgram, class: PycBugClass| {
            p.bugs.iter().filter(|b| b.class == class).count()
        };
        let krbv = &corpus.programs[0];
        assert_eq!(count(krbv, PycBugClass::Common), 48);
        assert_eq!(count(krbv, PycBugClass::RidOnly), 86);
        assert_eq!(count(krbv, PycBugClass::BaselineOnly), 14);
        let totals: (usize, usize, usize) = corpus
            .programs
            .iter()
            .fold((0, 0, 0), |(c, r, b), p| {
                (
                    c + count(p, PycBugClass::Common),
                    r + count(p, PycBugClass::RidOnly),
                    b + count(p, PycBugClass::BaselineOnly),
                )
            });
        assert_eq!(totals, (86, 114, 16)); // Table 2's "total" row
    }

    #[test]
    fn functions_are_chunked_into_modules() {
        let corpus = generate_pyc(&PycConfig::default());
        let krbv = &corpus.programs[0];
        assert!(krbv.sources.len() > 1, "krbV should span several modules");
    }

    #[test]
    fn wrappers_are_labelled() {
        let corpus = generate_pyc(&PycConfig::tiny(1));
        let program = &corpus.programs[0];
        assert_eq!(program.wrappers.len(), 2);
        assert!(program.wrappers.iter().all(|w| w.contains("incref")));
    }
}
