//! Synthetic Linux-like kernel generator (the §6.1–6.5 substrate).
//!
//! The generator emits RIL modules shaped like the kernel code the paper
//! analyzes: per-subsystem DPM wrapper layers, drivers whose entry points
//! use the runtime-PM API with realistic error handling, helper functions
//! that land in each §5.2 classification category, and a large mass of
//! refcount-irrelevant filler. Bugs and false-positive-inducing constructs
//! are *seeded* with known ground truth:
//!
//! | Seed                | Paper artifact | RID expectation            |
//! |---------------------|----------------|----------------------------|
//! | `MissingPutOnGetError` | Figure 8    | detected                   |
//! | `MissingPutOnOpError`  | Figure 9    | detected (via wrapper)     |
//! | `DoublePut`            | §3.1 char. 4 | detected                  |
//! | `IrqHandlerStyle`      | Figure 10   | **missed** (function ptr)  |
//! | `LoopOnly`             | §5.4 item 2 | **missed** (unroll limit)  |
//! | bitmask false positive | §6.4        | reported, not a real bug   |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The kind of bug seeded into a generated function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeededBug {
    /// Figure 8: early error return after `pm_runtime_get_sync` without
    /// the balancing put (the API increments even on failure).
    MissingPutOnGetError,
    /// Figure 9: a later operation fails and the error path skips the
    /// subsystem wrapper's put.
    MissingPutOnOpError,
    /// An extra put on an internally distinguished path: the PM count can
    /// go negative (characteristic 4).
    DoublePut,
    /// Figure 10: internally consistent (distinct return codes), the
    /// imbalance only shows at function-pointer callers RID cannot see.
    IrqHandlerStyle,
    /// §5.4 limitation 2: the imbalance appears only when a loop body runs
    /// two or more times; unrolling once hides it.
    LoopOnly,
}

impl SeededBug {
    /// Whether RID is expected to detect this bug class.
    #[must_use]
    pub fn rid_should_detect(self) -> bool {
        matches!(
            self,
            SeededBug::MissingPutOnGetError
                | SeededBug::MissingPutOnOpError
                | SeededBug::DoublePut
        )
    }
}

/// Ground-truth record for one seeded bug.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeededBugRecord {
    /// Function containing the bug.
    pub function: String,
    /// The bug class.
    pub kind: SeededBug,
}

/// Ground truth for one *direct* `pm_runtime_get*` call site with error
/// handling — the §6.3 census population.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GetCallSite {
    /// Function containing the call site.
    pub function: String,
    /// Whether the error path misses the balancing decrement (buggy).
    pub missing_decrement: bool,
    /// Whether the bug (if any) is within RID's power to detect.
    pub rid_detectable: bool,
}

/// Generator configuration. Integer weights select the variant of each
/// driver entry point; see the module docs for the classes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// RNG seed (same seed ⇒ identical corpus).
    pub seed: u64,
    /// Number of subsystems (each contributes a wrapper module).
    pub subsystems: usize,
    /// Drivers per subsystem (each contributes one module).
    pub drivers_per_subsystem: usize,
    /// Refcount-irrelevant filler modules (category-3 mass).
    pub filler_modules: usize,
    /// Functions per filler module.
    pub filler_functions_per_module: usize,
    /// Weight: correct, balanced entry point.
    pub w_correct: u32,
    /// Weight: Figure 8 bug.
    pub w_fig8: u32,
    /// Weight: Figure 9 bug.
    pub w_fig9: u32,
    /// Weight: double put bug.
    pub w_double_put: u32,
    /// Weight: §6.4 bitmask false positive.
    pub w_false_positive: u32,
    /// Weight: Figure 10 (missed) bug.
    pub w_irq: u32,
    /// Weight: loop-only (missed) bug.
    pub w_loop: u32,
    /// Probability (percent) that a correct probe checks the get's error
    /// code (entering the §6.3 census as a non-buggy site).
    pub pct_probe_error_checked: u32,
    /// Adversarial modules appended to the corpus (0 = none, the
    /// default). Each holds path-explosive and wide-branching functions
    /// that stress the analysis limits/budgets without seeding bugs.
    #[serde(default)]
    pub adversarial_modules: usize,
    /// Diamonds chained in each adversarial path-explosion function
    /// (structural paths = 2^depth).
    #[serde(default)]
    pub adversarial_depth: usize,
    /// Known-spurious modules appended to the corpus (0 = none, the
    /// default). Each holds one bug-free function built to fool stage
    /// one's bounded disequality splitting into a report that the exact
    /// second-stage refutation provably kills — the ground-truth
    /// population for measuring the refutation rate (see
    /// [`spurious_module`] and `REPORTS.md`).
    #[serde(default)]
    pub seeded_spurious: usize,
}

impl KernelConfig {
    /// A small corpus for tests (a handful of modules).
    #[must_use]
    pub fn tiny(seed: u64) -> KernelConfig {
        KernelConfig {
            seed,
            subsystems: 2,
            drivers_per_subsystem: 3,
            filler_modules: 2,
            filler_functions_per_module: 10,
            ..KernelConfig::default()
        }
    }

    /// The default evaluation corpus: calibrated so the §6.3 census and
    /// the Table 1 category *ratios* land near the paper's (see
    /// `EXPERIMENTS.md` for measured values).
    #[must_use]
    pub fn evaluation(seed: u64) -> KernelConfig {
        KernelConfig { seed, ..KernelConfig::default() }
    }

    /// Scales the corpus size (drivers and filler) by `factor`, keeping
    /// the idiom mix constant. Used by the §6.5 performance sweep.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> KernelConfig {
        let scale = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        self.subsystems = scale(self.subsystems);
        self.filler_modules = scale(self.filler_modules);
        self
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            seed: 2016,
            subsystems: 24,
            drivers_per_subsystem: 12,
            filler_modules: 160,
            filler_functions_per_module: 60,
            w_correct: 25,
            w_fig8: 12,
            w_fig9: 6,
            w_double_put: 4,
            w_false_positive: 40,
            w_irq: 8,
            w_loop: 5,
            pct_probe_error_checked: 10,
            adversarial_modules: 0,
            adversarial_depth: 12,
            seeded_spurious: 0,
        }
    }
}

/// A generated kernel corpus: RIL sources plus ground truth.
#[derive(Clone, Debug, Default)]
pub struct KernelCorpus {
    /// RIL module sources (parse with `rid_frontend::parse_program`).
    pub sources: Vec<String>,
    /// All seeded bugs.
    pub bugs: Vec<SeededBugRecord>,
    /// Functions expected to draw a false-positive report (§6.4 idioms).
    pub expected_false_positives: Vec<String>,
    /// §6.3 census: direct `pm_runtime_get*` sites with error handling.
    pub census: Vec<GetCallSite>,
    /// Total functions generated.
    pub function_count: usize,
    /// Adversarial (limit-stressing, bug-free) functions, when
    /// [`KernelConfig::adversarial_modules`] > 0.
    pub adversarial_functions: Vec<String>,
    /// Bug-free functions guaranteed to draw exactly one stage-one report
    /// that exact refutation removes, when
    /// [`KernelConfig::seeded_spurious`] > 0. Ground truth for the
    /// refutation-rate measurement.
    pub spurious_functions: Vec<String>,
}

impl KernelCorpus {
    /// Functions with bugs RID should detect.
    pub fn detectable_bug_functions(&self) -> impl Iterator<Item = &str> {
        self.bugs
            .iter()
            .filter(|b| b.kind.rid_should_detect())
            .map(|b| b.function.as_str())
    }

    /// Functions with bugs RID is expected to miss.
    pub fn missed_bug_functions(&self) -> impl Iterator<Item = &str> {
        self.bugs
            .iter()
            .filter(|b| !b.kind.rid_should_detect())
            .map(|b| b.function.as_str())
    }
}

/// Variant of a generated driver entry point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Variant {
    Correct,
    Fig8,
    Fig9,
    DoublePut,
    FalsePositive,
    Irq,
    LoopOnly,
}

const SUBSYSTEM_NAMES: &[&str] = &[
    "usb", "i2c", "spi", "drm", "mmc", "scsi", "net", "tty", "hid", "iio", "rtc", "can",
    "pci", "nvme", "ata", "gpio", "pwm", "dma", "mtd", "phy", "thermal", "media", "sound",
    "input", "virtio", "fpga", "mei", "uwb", "ssb", "vfio", "xen", "hv",
];

const DRIVER_STEMS: &[&str] = &[
    "falcon", "osprey", "heron", "kestrel", "merlin", "condor", "raven", "swift", "ibis",
    "egret", "petrel", "skua", "tern", "gull", "plover", "sandpiper", "curlew", "godwit",
    "avocet", "stilt", "lapwing", "dunlin", "knot", "ruff", "snipe", "phalarope",
];

struct Gen {
    rng: StdRng,
    corpus: KernelCorpus,
}

impl Gen {
    fn pick_variant(&mut self, config: &KernelConfig) -> Variant {
        let table = [
            (Variant::Correct, config.w_correct),
            (Variant::Fig8, config.w_fig8),
            (Variant::Fig9, config.w_fig9),
            (Variant::DoublePut, config.w_double_put),
            (Variant::FalsePositive, config.w_false_positive),
            (Variant::Irq, config.w_irq),
            (Variant::LoopOnly, config.w_loop),
        ];
        let total: u32 = table.iter().map(|(_, w)| w).sum();
        let mut roll = self.rng.gen_range(0..total.max(1));
        for (variant, weight) in table {
            if roll < weight {
                return variant;
            }
            roll -= weight;
        }
        Variant::Correct
    }
}

/// Generates a kernel corpus from `config`. Deterministic in the seed.
#[must_use]
pub fn generate_kernel(config: &KernelConfig) -> KernelCorpus {
    let mut g = Gen { rng: StdRng::seed_from_u64(config.seed), corpus: KernelCorpus::default() };

    for ss_idx in 0..config.subsystems {
        let ss = subsystem_name(ss_idx);
        g.corpus.sources.push(subsystem_core(&ss));
        g.corpus.function_count += 2;
        for drv_idx in 0..config.drivers_per_subsystem {
            let drv = driver_name(&ss, ss_idx, drv_idx);
            let source = driver_module(&mut g, config, &ss, &drv);
            g.corpus.sources.push(source);
        }
    }

    for f_idx in 0..config.filler_modules {
        g.corpus.sources.push(filler_module(f_idx, config.filler_functions_per_module));
        g.corpus.function_count += config.filler_functions_per_module;
        if f_idx % 16 < 13 {
            g.corpus.function_count += 1; // the API-touching init function
        }
    }

    // Adversarial modules come last so corpora generated with the knob off
    // are byte-identical to pre-knob corpora of the same seed.
    for a_idx in 0..config.adversarial_modules {
        let source = adversarial_module(&mut g, a_idx, config.adversarial_depth);
        g.corpus.sources.push(source);
    }

    // Seeded-spurious modules append after the adversarial ones, for the
    // same byte-identity-when-off reason.
    for s_idx in 0..config.seeded_spurious {
        let source = spurious_module(&mut g, s_idx);
        g.corpus.sources.push(source);
    }

    g.corpus
}

/// Guard values in a [`spurious_module`] function: the argument is bounded
/// to `[0, SPURIOUS_DISEQS - 1]` and then excluded from every value in
/// that interval, so proving the deep path infeasible takes
/// `SPURIOUS_DISEQS` case splits — more than the stage-one default budget
/// of 64 ([`rid_solver::SatOptions`]), fewer than the second stage's
/// unlimited splitting needs to care about.
pub const SPURIOUS_DISEQS: i64 = 72;

/// One known-spurious module: a single bug-free function whose two
/// deepest paths (reached when `a` evades every equality guard — which no
/// integer can) are enumerated first, survive stage one's feasibility
/// checks only because the split budget exhausts toward "satisfiable"
/// (§5.4), and pair into exactly one IPP report. The paths nest inside
/// the guards so then-first DFS emits them at indices 0 and 1, safely
/// under the entry cap that truncates the later guard-exit paths. The
/// report's joint constraint is genuinely unsatisfiable, so the exact
/// refutation pass removes it — deterministically, for every seed.
fn spurious_module(g: &mut Gen, idx: usize) -> String {
    let mut out = format!("module spurious{idx};\n");
    out.push_str("extern fn pm_runtime_get_sync;\n\n");
    let func = format!("spur{idx}_commit");
    let _ = writeln!(out, "fn {func}(dev, a) {{");
    out.push_str("    if (a >= 0) {\n");
    let _ = writeln!(out, "    if (a <= {}) {{", SPURIOUS_DISEQS - 1);
    for k in 0..SPURIOUS_DISEQS {
        let _ = writeln!(out, "    if (a != {k}) {{");
    }
    out.push_str("    let r = random;\n");
    out.push_str("    if (r < 0) {\n        pm_runtime_get_sync(dev);\n        return 0;\n    }\n");
    out.push_str("    return 0;\n");
    for _ in 0..SPURIOUS_DISEQS + 2 {
        out.push_str("    }\n");
    }
    out.push_str("    return -1;\n}\n");
    g.corpus.function_count += 1;
    g.corpus.spurious_functions.push(func);
    out
}

/// One adversarial module: a path-explosion function (a chain of `depth`
/// diamonds ⇒ 2^depth structural paths) and a wide equality-switch
/// function. Both are balanced (no seeded bugs) and category 1 (they call
/// refcount APIs), so selective analysis cannot skip them — they exist to
/// stress path caps, deadlines, and solver budgets.
fn adversarial_module(g: &mut Gen, idx: usize, depth: usize) -> String {
    let mut out = format!("module adversarial{idx};\n");
    out.push_str("extern fn pm_runtime_get_sync;\nextern fn pm_runtime_put;\n\n");

    let explosive = format!("adv{idx}_paths");
    let _ = write!(out, "fn {explosive}(dev) {{\n    pm_runtime_get_sync(dev);\n");
    for d in 0..depth.max(1) {
        let _ = write!(
            out,
            "    let c{d} = random;\n    if (c{d} < 0) {{ dev.aux{d} = 1; }}\n"
        );
    }
    out.push_str("    pm_runtime_put(dev);\n    return 0;\n}\n\n");

    let switch = format!("adv{idx}_switch");
    let _ = write!(
        out,
        "fn {switch}(dev, x) {{\n    pm_runtime_get_sync(dev);\n    pm_runtime_put(dev);\n"
    );
    for arm in 0..32 {
        let _ = writeln!(out, "    if (x == {arm}) {{ return {arm}; }}");
    }
    out.push_str("    return -1;\n}\n");

    g.corpus.function_count += 2;
    g.corpus.adversarial_functions.push(explosive);
    g.corpus.adversarial_functions.push(switch);
    out
}

fn subsystem_name(idx: usize) -> String {
    let base = SUBSYSTEM_NAMES[idx % SUBSYSTEM_NAMES.len()];
    if idx < SUBSYSTEM_NAMES.len() {
        base.to_owned()
    } else {
        format!("{base}{}", idx / SUBSYSTEM_NAMES.len())
    }
}

fn driver_name(ss: &str, ss_idx: usize, drv_idx: usize) -> String {
    let stem = DRIVER_STEMS[(ss_idx * 7 + drv_idx) % DRIVER_STEMS.len()];
    format!("{ss}_{stem}{drv_idx}")
}

/// The per-subsystem wrapper layer: the `usb_autopm_get_interface` pattern
/// of Figure 9 (balances the count when the get fails).
fn subsystem_core(ss: &str) -> String {
    format!(
        r#"module {ss}_core;
extern fn pm_runtime_get_sync;
extern fn pm_runtime_put_sync;

fn {ss}_autopm_get(intf) {{
    let status = pm_runtime_get_sync(intf.dev);
    if (status < 0) {{
        pm_runtime_put_sync(intf.dev);
    }}
    if (status > 0) {{
        status = 0;
    }}
    return status;
}}

fn {ss}_autopm_put(intf) {{
    pm_runtime_put_sync(intf.dev);
    return;
}}
"#
    )
}

/// One driver module: probe + two variant entry points + helpers spanning
/// the classification categories.
fn driver_module(g: &mut Gen, config: &KernelConfig, ss: &str, drv: &str) -> String {
    let mut out = format!("module {drv};\n");
    out.push_str("extern fn pm_runtime_get_sync;\nextern fn pm_runtime_put;\n\n");

    // Probe: correct; sometimes error-checked (entering the §6.3 census).
    let checked = g.rng.gen_range(0..100) < config.pct_probe_error_checked;
    emit_probe(g, &mut out, drv, checked);

    // Two variant entry points per driver.
    for (slot, suffix) in [("open", "open"), ("ioctl", "ioctl")] {
        let _ = slot;
        let variant = g.pick_variant(config);
        emit_variant(g, &mut out, config, ss, drv, suffix, variant);
    }

    // Suspend path: always correct, exercising the noresume/noidle API
    // variants and an argument-field guard (distinguishable, hence clean).
    let _ = write!(
        out,
        r#"fn {drv}_suspend(dev) {{
    let active = dev.state;
    if (active == 0) {{
        return 0;
    }}
    pm_runtime_get_noresume(dev);
    {drv}_save_state(dev);
    pm_runtime_put_noidle(dev);
    return 0;
}}

"#
    );
    g.corpus.function_count += 1;

    // Helpers: category-2 analyzed (simple status), category-2 skipped
    // (complex init), category-3 (void logger).
    emit_helpers(g, &mut out, drv);

    out
}

fn emit_probe(g: &mut Gen, out: &mut String, drv: &str, error_checked: bool) {
    let func = format!("{drv}_probe");
    if error_checked {
        // Correct: the error path balances the increment.
        let _ = write!(
            out,
            r#"fn {func}(dev) {{
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) {{
        pm_runtime_put(dev);
        return ret;
    }}
    let st = {drv}_hw_init(dev);
    pm_runtime_put(dev);
    return st;
}}

"#
        );
        g.corpus.census.push(GetCallSite {
            function: func,
            missing_decrement: false,
            rid_detectable: true,
        });
    } else {
        let _ = write!(
            out,
            r#"fn {func}(dev) {{
    pm_runtime_get_sync(dev);
    let st = {drv}_hw_init(dev);
    pm_runtime_put(dev);
    return st;
}}

"#
        );
    }
    g.corpus.function_count += 1;
}

fn emit_variant(
    g: &mut Gen,
    out: &mut String,
    _config: &KernelConfig,
    ss: &str,
    drv: &str,
    suffix: &str,
    variant: Variant,
) {
    let func = format!("{drv}_{suffix}");
    g.corpus.function_count += 1;
    let err = -(g.rng.gen_range(1..6) as i64);
    match variant {
        Variant::Correct => {
            // Most correct call sites do not check the get's return value
            // at all (and so fall outside the §6.3 census); a minority
            // check it and balance correctly.
            if g.rng.gen_range(0..100) < 15 {
                let _ = write!(
                    out,
                    r#"fn {func}(dev, arg) {{
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) {{
        pm_runtime_put(dev);
        return ret;
    }}
    ret = {drv}_do_{suffix}(dev, arg);
    pm_runtime_put(dev);
    return ret;
}}

"#
                );
                g.corpus.census.push(GetCallSite {
                    function: func,
                    missing_decrement: false,
                    rid_detectable: true,
                });
            } else {
                let _ = write!(
                    out,
                    r#"fn {func}(dev, arg) {{
    pm_runtime_get_sync(dev);
    let ret = {drv}_do_{suffix}(dev, arg);
    pm_runtime_put(dev);
    return ret;
}}

"#
                );
            }
        }
        Variant::Fig8 => {
            let _ = write!(
                out,
                r#"fn {func}(dev, arg) {{
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) {{
        return ret;
    }}
    ret = {drv}_do_{suffix}(dev, arg);
    pm_runtime_put(dev);
    return ret;
}}

"#
            );
            g.corpus.census.push(GetCallSite {
                function: func.clone(),
                missing_decrement: true,
                rid_detectable: true,
            });
            g.corpus
                .bugs
                .push(SeededBugRecord { function: func, kind: SeededBug::MissingPutOnGetError });
        }
        Variant::Fig9 => {
            let _ = write!(
                out,
                r#"fn {func}(inode, file) {{
    let interface = inode.intf;
    let result = {ss}_autopm_get(interface);
    if (result) {{ goto error; }}
    result = {drv}_prepare_{suffix}(inode);
    if (result) {{ goto error; }}
    {ss}_autopm_put(interface);
error:
    return result;
}}

"#
            );
            g.corpus
                .bugs
                .push(SeededBugRecord { function: func, kind: SeededBug::MissingPutOnOpError });
        }
        Variant::DoublePut => {
            let _ = write!(
                out,
                r#"fn {func}(dev) {{
    pm_runtime_get_sync(dev);
    let st = {drv}_read_status(dev);
    if (st < 0) {{
        pm_runtime_put(dev);
    }}
    pm_runtime_put(dev);
    return 0;
}}

"#
            );
            g.corpus.bugs.push(SeededBugRecord { function: func, kind: SeededBug::DoublePut });
        }
        Variant::FalsePositive => {
            // §6.4: the retained reference is intentional and signalled by
            // a field store, which is outside RID's abstraction — the two
            // paths look indistinguishable and a spurious report follows.
            let _ = write!(
                out,
                r#"fn {func}(dev, req) {{
    pm_runtime_get_sync(dev);
    let mode = {drv}_read_status(dev);
    if (mode > 0) {{
        dev.active = 1;
        return 0;
    }}
    pm_runtime_put(dev);
    return 0;
}}

"#
            );
            g.corpus.expected_false_positives.push(func);
        }
        Variant::Irq => {
            let _ = write!(
                out,
                r#"fn {func}(irq, data) {{
    let ret = pm_runtime_get_sync(data.dev);
    if (ret < 0) {{
        {drv}_err(data);
        return 0;
    }}
    {drv}_handle(data);
    pm_runtime_put(data.dev);
    return 1;
}}

"#
            );
            // The handler is installed through a function pointer — the
            // very reason baseline RID misses it (and the callback
            // extension catches it).
            let _ = write!(
                out,
                r#"fn {func}_setup(dev) {{
    request_irq(dev.irq, @{func}, dev);
    return 0;
}}

"#
            );
            g.corpus.function_count += 1;
            g.corpus.census.push(GetCallSite {
                function: func.clone(),
                missing_decrement: true,
                rid_detectable: false,
            });
            g.corpus
                .bugs
                .push(SeededBugRecord { function: func, kind: SeededBug::IrqHandlerStyle });
        }
        Variant::LoopOnly => {
            let _ = write!(
                out,
                r#"fn {func}(dev) {{
    let entered = 0;
    let more = {drv}_more_work(dev);
    while (more) {{
        pm_runtime_get_sync(dev);
        entered = 1;
        more = {drv}_more_work(dev);
    }}
    if (entered) {{
        pm_runtime_put(dev);
    }}
    return 0;
}}

"#
            );
            g.corpus.bugs.push(SeededBugRecord { function: func, kind: SeededBug::LoopOnly });
        }
    }
    let _ = err;
}

fn emit_helpers(g: &mut Gen, out: &mut String, drv: &str) {
    // Category-2 analyzed: a simple status read feeding error checks.
    let _ = write!(
        out,
        r#"fn {drv}_read_status(dev) {{
    let v = random;
    if (v > 127) {{ return -1; }}
    return v;
}}

"#
    );
    // Category-2 skipped: >3 conditional branches.
    let _ = writeln!(out, "fn {drv}_hw_init(dev) {{");
    for i in 0..5 {
        let _ = write!(
            out,
            "    let c{i} = random;\n    if (c{i} < 0) {{ return -{} ; }}\n",
            i + 1
        );
    }
    let _ = write!(out, "    return 0;\n}}\n\n");
    // Category-3: result never feeds refcount behaviour.
    let _ = write!(
        out,
        r#"fn {drv}_err(data) {{
    {drv}_trace(data);
    return;
}}

fn {drv}_trace(data) {{
    return;
}}
"#
    );
    g.corpus.function_count += 4;
    let _ = g;
}

/// Resource families whose get/put externs filler modules reference —
/// these make the mined API inventory (§3.1) and the files-touching-APIs
/// census realistic without perturbing the Table 1 category counts (the
/// externs have no predefined summaries, so callers stay category 3 under
/// the DPM-only specification).
const RESOURCE_POOLS: &[&str] = &[
    "skb", "dmabuf", "fence", "folio", "bio", "cgroup", "inode_ref", "dentry", "kobj",
    "module_ref", "fw", "regulator", "clk", "irqdesc", "msi", "vma", "pidref", "nsproxy",
    "blkg", "queue", "tag", "ctx", "mm_ref", "net_ref", "sock_ref", "page_pool",
];

fn filler_module(idx: usize, functions: usize) -> String {
    let mut out = format!("module filler{idx};\n");
    // ~81% of filler modules reference a refcount-style API pair (get +
    // balanced put), mirroring the paper's observation that 93.5% of
    // kernel *files* touch refcount APIs even though ~97% of *functions*
    // are refcount-irrelevant (§3.1 vs Table 1).
    let touches_apis = idx % 16 < 13;
    if touches_apis {
        let pool = RESOURCE_POOLS[idx % RESOURCE_POOLS.len()];
        let family = format!("{pool}{}", idx / RESOURCE_POOLS.len());
        // Rotate through the kernel's usual verb antonyms so the mined
        // inventory spans several families, as in §3.1.
        let (inc, dec) = match idx % 5 {
            0 => ("get", "put"),
            1 => ("ref", "unref"),
            2 => ("acquire", "release"),
            3 => ("inc", "dec"),
            _ => ("grab", "drop"),
        };
        let _ = writeln!(
            out,
            "fn filler{idx}_init(x) {{ {family}_{inc}(x); {family}_{dec}(x); return; }}"
        );
    }
    for f in 0..functions {
        if f + 1 < functions && f % 3 == 0 {
            let _ = writeln!(
                out,
                "fn filler{idx}_f{f}(x) {{ filler{idx}_f{}(x); return; }}",
                f + 1
            );
        } else {
            let _ = writeln!(out, "fn filler{idx}_f{f}(x) {{ return x; }}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_frontend::parse_program;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_kernel(&KernelConfig::tiny(7));
        let b = generate_kernel(&KernelConfig::tiny(7));
        assert_eq!(a.sources, b.sources);
        assert_eq!(a.bugs, b.bugs);
        let c = generate_kernel(&KernelConfig::tiny(8));
        assert_ne!(a.sources, c.sources);
    }

    #[test]
    fn sources_parse_and_link() {
        let corpus = generate_kernel(&KernelConfig::tiny(1));
        let program = parse_program(corpus.sources.iter().map(String::as_str))
            .expect("generated corpus must parse");
        assert!(program.function_count() > 20);
    }

    #[test]
    fn census_tracks_buggy_and_correct_sites() {
        let corpus = generate_kernel(&KernelConfig::evaluation(2016));
        assert!(!corpus.census.is_empty());
        let buggy = corpus.census.iter().filter(|s| s.missing_decrement).count();
        let correct = corpus.census.len() - buggy;
        assert!(buggy > 0 && correct > 0);
        // The paper's §6.3 shape: roughly 70% of error-handled call sites
        // miss the decrement. Allow a generous band.
        let pct = buggy * 100 / corpus.census.len();
        assert!((50..=90).contains(&pct), "buggy census fraction {pct}%");
    }

    #[test]
    fn bug_mix_contains_all_classes() {
        let corpus = generate_kernel(&KernelConfig::evaluation(2016));
        let kinds: std::collections::HashSet<SeededBug> =
            corpus.bugs.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&SeededBug::MissingPutOnGetError));
        assert!(kinds.contains(&SeededBug::MissingPutOnOpError));
        assert!(kinds.contains(&SeededBug::DoublePut));
        assert!(kinds.contains(&SeededBug::IrqHandlerStyle));
        assert!(kinds.contains(&SeededBug::LoopOnly));
        assert!(!corpus.expected_false_positives.is_empty());
    }

    #[test]
    fn scaling_changes_size() {
        let base = KernelConfig::evaluation(1);
        let half = base.clone().scaled(0.5);
        assert!(half.subsystems < base.subsystems);
        assert!(half.filler_modules < base.filler_modules);
        let tiny_corpus = generate_kernel(&KernelConfig::tiny(1));
        let eval_corpus = generate_kernel(&base.scaled(0.1));
        assert!(eval_corpus.function_count > tiny_corpus.function_count);
    }

    #[test]
    fn adversarial_knob_defaults_off_and_appends() {
        // Knob off ⇒ corpora identical to pre-knob generation.
        let plain = generate_kernel(&KernelConfig::tiny(3));
        assert!(plain.adversarial_functions.is_empty());

        let config = KernelConfig {
            adversarial_modules: 2,
            adversarial_depth: 4,
            ..KernelConfig::tiny(3)
        };
        let adv = generate_kernel(&config);
        // The adversarial modules append; everything before is unchanged.
        assert_eq!(adv.sources[..plain.sources.len()], plain.sources[..]);
        assert_eq!(adv.sources.len(), plain.sources.len() + 2);
        assert_eq!(adv.adversarial_functions.len(), 4);
        assert_eq!(adv.bugs, plain.bugs, "adversarial functions seed no bugs");
        assert_eq!(adv.function_count, plain.function_count + 4);

        let program = parse_program(adv.sources.iter().map(String::as_str))
            .expect("adversarial corpus must parse");
        for name in &adv.adversarial_functions {
            assert!(program.function(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn spurious_knob_defaults_off_and_appends() {
        let plain = generate_kernel(&KernelConfig::tiny(3));
        assert!(plain.spurious_functions.is_empty());

        let config = KernelConfig { seeded_spurious: 3, ..KernelConfig::tiny(3) };
        let spur = generate_kernel(&config);
        assert_eq!(spur.sources[..plain.sources.len()], plain.sources[..]);
        assert_eq!(spur.sources.len(), plain.sources.len() + 3);
        assert_eq!(spur.spurious_functions.len(), 3);
        assert_eq!(spur.bugs, plain.bugs, "spurious functions seed no bugs");
        assert_eq!(spur.function_count, plain.function_count + 3);

        let program = parse_program(spur.sources.iter().map(String::as_str))
            .expect("spurious corpus must parse");
        for name in &spur.spurious_functions {
            assert!(program.function(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn detectable_and_missed_partitions() {
        let corpus = generate_kernel(&KernelConfig::evaluation(2016));
        let detectable = corpus.detectable_bug_functions().count();
        let missed = corpus.missed_bug_functions().count();
        assert_eq!(detectable + missed, corpus.bugs.len());
        assert!(detectable > missed, "detectable classes dominate");
    }
}
