//! Property tests for the corpus generators: any seed yields parseable,
//! internally consistent corpora.

use proptest::prelude::*;
use rid_corpus::kernel::{generate_kernel, KernelConfig};
use rid_corpus::pyc::{generate_pyc, PycConfig};
use rid_frontend::parse_program;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn kernel_corpora_parse_for_any_seed(seed in 0u64..1_000_000) {
        let corpus = generate_kernel(&KernelConfig::tiny(seed));
        let program = parse_program(corpus.sources.iter().map(String::as_str))
            .expect("kernel corpus parses");
        // Ground-truth labels refer to real functions.
        for bug in &corpus.bugs {
            prop_assert!(program.function(&bug.function).is_some(), "{}", bug.function);
        }
        for f in &corpus.expected_false_positives {
            prop_assert!(program.function(f).is_some(), "{f}");
        }
        for site in &corpus.census {
            prop_assert!(program.function(&site.function).is_some(), "{}", site.function);
        }
        // Function count bookkeeping is consistent with the program.
        prop_assert_eq!(corpus.function_count, program.function_count());
    }

    #[test]
    fn pyc_corpora_parse_for_any_seed(seed in 0u64..1_000_000) {
        let corpus = generate_pyc(&PycConfig::tiny(seed));
        for p in &corpus.programs {
            let program = parse_program(p.sources.iter().map(String::as_str))
                .expect("pyc program parses");
            for bug in &p.bugs {
                prop_assert!(program.function(&bug.function).is_some(), "{}", bug.function);
            }
            for wrapper in &p.wrappers {
                prop_assert!(program.function(wrapper).is_some(), "{wrapper}");
            }
        }
    }

    /// Ground-truth detection holds across arbitrary pyc seeds, not just
    /// the calibrated default.
    #[test]
    fn pyc_detection_classes_hold_for_any_seed(seed in 0u64..100_000) {
        use std::collections::HashSet;
        let corpus = generate_pyc(&PycConfig::tiny(seed));
        let program = &corpus.programs[0];
        let apis = rid_core::apis::python_c_apis();
        let rid = rid_core::analyze_sources(
            program.sources.iter().map(String::as_str),
            &apis,
            &rid_core::AnalysisOptions::default(),
        )
        .unwrap();
        let baseline = rid_baseline::check_sources(
            program.sources.iter().map(String::as_str),
            &apis,
        )
        .unwrap();
        let rid_found: HashSet<&str> =
            rid.reports.iter().map(|r| r.function.as_str()).collect();
        let base_found: HashSet<&str> =
            baseline.reports.iter().map(|r| r.function.as_str()).collect();
        use rid_corpus::pyc::PycBugClass;
        for bug in &program.bugs {
            let f = bug.function.as_str();
            let (in_rid, in_base) = (rid_found.contains(f), base_found.contains(f));
            match bug.class {
                PycBugClass::Common => prop_assert!(in_rid && in_base, "seed {seed}: {f}"),
                PycBugClass::RidOnly => prop_assert!(in_rid && !in_base, "seed {seed}: {f}"),
                PycBugClass::BaselineOnly => {
                    prop_assert!(!in_rid && in_base, "seed {seed}: {f}")
                }
            }
        }
    }
}
